//===- mir/MIRParser.cpp - Textual MIR parsing ----------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/MIRParser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace mco;

namespace {

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

bool parseReg(const std::string &Tok, Reg &Out) {
  static const std::unordered_map<std::string, Reg> Names = [] {
    std::unordered_map<std::string, Reg> M;
    for (unsigned I = 0; I <= 30; ++I)
      M["x" + std::to_string(I)] = xreg(I);
    M["sp"] = Reg::SP;
    M["xzr"] = Reg::XZR;
    M["nzcv"] = Reg::NZCV;
    return M;
  }();
  auto It = Names.find(Tok);
  if (It == Names.end())
    return false;
  Out = It->second;
  return true;
}

bool parseCond(const std::string &Tok, Cond &Out) {
  static const std::unordered_map<std::string, Cond> Names = {
      {"eq", Cond::EQ}, {"ne", Cond::NE}, {"lt", Cond::LT},
      {"le", Cond::LE}, {"gt", Cond::GT}, {"ge", Cond::GE},
      {"lo", Cond::LO}, {"hs", Cond::HS}};
  auto It = Names.find(Tok);
  if (It == Names.end())
    return false;
  Out = It->second;
  return true;
}

/// One comma-separated operand token plus its offset within the operand
/// string (for column-accurate diagnostics).
struct OperandTok {
  std::string Text;
  size_t Offset = 0;
};

/// Splits an operand list on commas (the printer never emits commas
/// inside operands), recording where each token starts.
std::vector<OperandTok> splitOperands(const std::string &S) {
  std::vector<OperandTok> Out;
  size_t Start = 0;
  auto Emit = [&](size_t End) {
    size_t B = S.find_first_not_of(" \t", Start);
    if (B == std::string::npos || B >= End)
      B = Start;
    std::string Tok = trim(S.substr(Start, End - Start));
    Out.push_back({std::move(Tok), B});
  };
  for (size_t I = 0; I < S.size(); ++I)
    if (S[I] == ',') {
      Emit(I);
      Start = I + 1;
    }
  size_t B = S.find_first_not_of(" \t", Start);
  if (B != std::string::npos)
    Emit(S.size());
  return Out;
}

/// Parser state for one module.
class ModuleParser {
public:
  ModuleParser(Program &Prog, Module &M) : Prog(Prog), M(M) {}

  std::vector<ParseDiag> parse(const std::string &Text) {
    std::istringstream In(Text);
    std::string Raw;
    unsigned LineNo = 0;
    bool Skipping = false;
    while (std::getline(In, Raw)) {
      ++LineNo;
      size_t Indent = Raw.find_first_not_of(" \t\r\n");
      std::string Line = trim(Raw);
      if (Skipping) {
        // Recover at the next function header so every broken function in
        // the file is reported in one parse.
        if (!isFunctionHeader(Line))
          continue;
        Skipping = false;
      }
      ErrColumn = 0;
      std::string Err = parseLine(Line);
      if (!Err.empty()) {
        unsigned Col = static_cast<unsigned>(
            (Indent == std::string::npos ? 0 : Indent) + ErrColumn + 1);
        Diags.push_back({LineNo, Col, Err});
        Skipping = true;
      }
    }
    return std::move(Diags);
  }

private:
  using MO = MachineOperand;

  /// "<name>:" for a function (not a block label, not a global).
  static bool isFunctionHeader(const std::string &Line) {
    return !Line.empty() && Line.back() == ':' &&
           Line.find(':') == Line.size() - 1 &&
           Line.rfind(".LBB", 0) != 0 && Line[0] != ';';
  }

  MachineBasicBlock &currentBlock() {
    return M.Functions.back().Blocks.back();
  }

  std::string parseLine(const std::string &Line) {
    if (Line.empty())
      return "";
    if (Line[0] == ';') {
      // "; module <name>" or a comment.
      if (Line.rfind("; module ", 0) == 0)
        M.Name = trim(Line.substr(9));
      return "";
    }
    // ".LBB<k>:" starts a new block of the current function.
    if (Line.rfind(".LBB", 0) == 0 && Line.back() == ':') {
      if (M.Functions.empty())
        return "block label outside a function";
      M.Functions.back().addBlock();
      return "";
    }
    // "<name>: .space N" declares a global.
    size_t Colon = Line.find(':');
    if (Colon != std::string::npos &&
        Line.find(".space", Colon) != std::string::npos) {
      GlobalData G;
      G.Name = Prog.internSymbol(trim(Line.substr(0, Colon)));
      size_t SpacePos = Line.find(".space", Colon) + 6;
      G.Bytes.assign(
          static_cast<size_t>(std::strtoull(
              trim(Line.substr(SpacePos)).c_str(), nullptr, 10)),
          0);
      M.Globals.push_back(std::move(G));
      return "";
    }
    // "<name>:" starts a function.
    if (Colon == Line.size() - 1 && Colon != std::string::npos) {
      MachineFunction MF;
      std::string Name = trim(Line.substr(0, Colon));
      MF.Name = Prog.internSymbol(Name);
      MF.IsOutlined = Name.rfind("OUTLINED_FUNCTION", 0) == 0;
      MF.addBlock();
      M.Functions.push_back(std::move(MF));
      return "";
    }
    // Otherwise: an instruction line.
    if (M.Functions.empty())
      return "instruction outside a function";
    return parseInstr(Line);
  }

  std::string regOp(const std::string &Tok, MO &Out) {
    Reg R;
    if (!parseReg(Tok, R))
      return "expected register, got '" + Tok + "'";
    Out = MO::reg(R);
    return "";
  }
  std::string immOp(const std::string &Tok, MO &Out) {
    if (Tok.empty() || Tok[0] != '#')
      return "expected immediate, got '" + Tok + "'";
    Out = MO::imm(std::strtoll(Tok.c_str() + 1, nullptr, 10));
    return "";
  }
  std::string blockOp(const std::string &Tok, MO &Out) {
    if (Tok.rfind(".LBB", 0) != 0)
      return "expected block label, got '" + Tok + "'";
    Out = MO::block(
        static_cast<uint32_t>(std::strtoul(Tok.c_str() + 4, nullptr, 10)));
    return "";
  }
  std::string condOp(const std::string &Tok, MO &Out) {
    Cond C;
    if (!parseCond(Tok, C))
      return "expected condition, got '" + Tok + "'";
    Out = MO::cond(C);
    return "";
  }
  std::string symOp(const std::string &Tok, MO &Out) {
    if (Tok.empty())
      return "expected symbol";
    Out = MO::sym(Prog.internSymbol(Tok));
    return "";
  }

  std::string parseInstr(const std::string &Line) {
    size_t Sp = Line.find_first_of(" \t");
    std::string Mn = Sp == std::string::npos ? Line : Line.substr(0, Sp);
    std::vector<OperandTok> Ops = Sp == std::string::npos
                                      ? std::vector<OperandTok>{}
                                      : splitOperands(Line.substr(Sp));
    // Token offsets are relative to the operand section; rebase them onto
    // the (trimmed) line for diagnostics.
    for (OperandTok &O : Ops)
      O.Offset += Sp;
    const size_t N = Ops.size();
    for (const OperandTok &O : Ops)
      if (O.Text.empty()) {
        ErrColumn = O.Offset;
        return "empty operand";
      }
    auto IsImm = [&](size_t I) { return I < N && Ops[I].Text[0] == '#'; };

    // Resolve (mnemonic, arity, operand shapes) to an opcode with the
    // operand kind string: r = register, i = immediate, b = block,
    // c = condition, s = symbol.
    Opcode Op;
    std::string Kinds;
    if (Mn == "mov" && N == 2) {
      Op = Opcode::MOVri; Kinds = "ri";
    } else if (Mn == "orr" && N == 2) {
      Op = Opcode::MOVrr; Kinds = "rr";
    } else if (Mn == "orr" && N == 3) {
      Op = Opcode::ORRrr; Kinds = "rrr";
    } else if ((Mn == "add" || Mn == "sub" || Mn == "lsl" || Mn == "asr") &&
               N == 3) {
      bool Imm = IsImm(2);
      if (Mn == "add") Op = Imm ? Opcode::ADDri : Opcode::ADDrr;
      else if (Mn == "sub") Op = Imm ? Opcode::SUBri : Opcode::SUBrr;
      else if (Mn == "lsl") Op = Imm ? Opcode::LSLri : Opcode::LSLrr;
      else Op = Imm ? Opcode::ASRri : Opcode::ASRrr;
      Kinds = Imm ? "rri" : "rrr";
    } else if (Mn == "mul" && N == 3) {
      Op = Opcode::MULrr; Kinds = "rrr";
    } else if (Mn == "sdiv" && N == 3) {
      Op = Opcode::SDIVrr; Kinds = "rrr";
    } else if (Mn == "msub" && N == 4) {
      Op = Opcode::MSUBrr; Kinds = "rrrr";
    } else if (Mn == "and" && N == 3) {
      Op = Opcode::ANDrr; Kinds = "rrr";
    } else if (Mn == "eor" && N == 3) {
      Op = Opcode::EORrr; Kinds = "rrr";
    } else if (Mn == "cmp" && N == 2) {
      bool Imm = IsImm(1);
      Op = Imm ? Opcode::CMPri : Opcode::CMPrr;
      Kinds = Imm ? "ri" : "rr";
    } else if (Mn == "cset" && N == 2) {
      Op = Opcode::CSET; Kinds = "rc";
    } else if (Mn == "csel" && N == 4) {
      Op = Opcode::CSEL; Kinds = "rrrc";
    } else if (Mn == "ldr" && N == 3) {
      Op = Opcode::LDRui; Kinds = "rri";
    } else if (Mn == "str" && N == 3) {
      Op = Opcode::STRui; Kinds = "rri";
    } else if (Mn == "ldp" && N == 4) {
      Op = Opcode::LDPui; Kinds = "rrri";
    } else if (Mn == "stp" && N == 4) {
      Op = Opcode::STPui; Kinds = "rrri";
    } else if (Mn == "str!" && N == 3) {
      Op = Opcode::STRpre; Kinds = "rri";
    } else if (Mn == "ldr+" && N == 3) {
      Op = Opcode::LDRpost; Kinds = "rri";
    } else if (Mn == "adr" && N == 2) {
      Op = Opcode::ADR; Kinds = "rs";
    } else if (Mn == "b" && N == 1) {
      Op = Opcode::B; Kinds = "b";
    } else if (Mn == "b.cc" && N == 2) {
      Op = Opcode::Bcc; Kinds = "cb";
    } else if ((Mn == "cbz" || Mn == "cbnz") && N == 2) {
      Op = Mn == "cbz" ? Opcode::CBZ : Opcode::CBNZ;
      Kinds = "rb";
    } else if (Mn == "b.tail" && N == 1) {
      Op = Opcode::Btail; Kinds = "s";
    } else if (Mn == "bl" && N == 1) {
      Op = Opcode::BL; Kinds = "s";
    } else if (Mn == "blr" && N == 1) {
      Op = Opcode::BLR; Kinds = "r";
    } else if (Mn == "br" && N == 1) {
      Op = Opcode::BR; Kinds = "r";
    } else if (Mn == "ret" && N == 0) {
      Op = Opcode::RET; Kinds = "";
    } else if (Mn == "nop" && N == 0) {
      Op = Opcode::NOP; Kinds = "";
    } else {
      return "unknown instruction '" + Mn + "' with " +
             std::to_string(N) + " operand(s)";
    }

    MO Parsed[4];
    for (size_t I = 0; I < Kinds.size(); ++I) {
      std::string Err;
      switch (Kinds[I]) {
      case 'r': Err = regOp(Ops[I].Text, Parsed[I]); break;
      case 'i': Err = immOp(Ops[I].Text, Parsed[I]); break;
      case 'b': Err = blockOp(Ops[I].Text, Parsed[I]); break;
      case 'c': Err = condOp(Ops[I].Text, Parsed[I]); break;
      case 's': Err = symOp(Ops[I].Text, Parsed[I]); break;
      }
      if (!Err.empty()) {
        ErrColumn = Ops[I].Offset;
        return Err;
      }
    }

    MachineInstr MI;
    switch (Kinds.size()) {
    case 0: MI = MachineInstr(Op); break;
    case 1: MI = MachineInstr(Op, Parsed[0]); break;
    case 2: MI = MachineInstr(Op, Parsed[0], Parsed[1]); break;
    case 3: MI = MachineInstr(Op, Parsed[0], Parsed[1], Parsed[2]); break;
    default:
      MI = MachineInstr(Op, Parsed[0], Parsed[1], Parsed[2], Parsed[3]);
      break;
    }
    currentBlock().push(MI);
    return "";
  }

  Program &Prog;
  Module &M;
  std::vector<ParseDiag> Diags;
  /// Column (0-based, within the trimmed line) of the current error.
  size_t ErrColumn = 0;
};

} // namespace

ParseResult mco::parseModule(Program &Prog, const std::string &Text) {
  ParseResult R;
  Module &M = Prog.addModule("parsed");
  ModuleParser P(Prog, M);
  R.Diags = P.parse(Text);
  if (!R.Diags.empty()) {
    R.Error = R.Diags.front().render();
    Prog.Modules.pop_back();
    return R;
  }
  // The text format does not carry outlined-frame metadata; infer it from
  // the body shape so verification and further outlining rounds work on
  // reloaded modules.
  for (MachineFunction &MF : M.Functions) {
    if (!MF.IsOutlined || MF.Blocks.empty() || MF.Blocks[0].empty())
      continue;
    const MachineBasicBlock &B = MF.Blocks[0];
    const MachineInstr &Last = B.Instrs.back();
    if (Last.opcode() == Opcode::Btail)
      MF.FrameKind = OutlinedFrameKind::Thunk;
    else if (B.size() >= 3 && B.Instrs.front().opcode() == Opcode::STRpre &&
             B.Instrs[B.size() - 2].opcode() == Opcode::LDRpost)
      MF.FrameKind = OutlinedFrameKind::SavesLRInFrame;
    else
      MF.FrameKind = OutlinedFrameKind::AppendedRet;
  }
  R.M = &M;
  return R;
}
