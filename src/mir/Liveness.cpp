//===- mir/Liveness.cpp - Physical register liveness ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "mir/Liveness.h"

#include <cassert>

using namespace mco;

void Liveness::recompute(const MachineFunction &MF) {
  const size_t NumBlocks = MF.Blocks.size();
  BlockLiveOut.assign(NumBlocks, 0);
  LiveBefore.assign(NumBlocks, {});
  LiveAfter.assign(NumBlocks, {});

  // Per-block gen/kill summaries.
  std::vector<RegMask> Gen(NumBlocks, 0), Kill(NumBlocks, 0);
  for (size_t B = 0; B < NumBlocks; ++B) {
    RegMask G = 0, K = 0;
    for (const MachineInstr &MI : MF.Blocks[B].Instrs) {
      G |= MI.uses() & ~K;
      K |= MI.defs();
    }
    Gen[B] = G;
    Kill[B] = K;
  }

  // Iterate to a fixed point (programs are shallow; converges fast).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B-- > 0;) {
      RegMask Out = 0;
      for (uint32_t S : MF.successors(static_cast<uint32_t>(B)))
        Out |= Gen[S] | (BlockLiveOut[S] & ~Kill[S]);
      if (Out != BlockLiveOut[B]) {
        BlockLiveOut[B] = Out;
        Changed = true;
      }
    }
  }

  // Per-instruction sets via a backward walk within each block.
  for (size_t B = 0; B < NumBlocks; ++B) {
    const auto &Instrs = MF.Blocks[B].Instrs;
    LiveBefore[B].assign(Instrs.size(), 0);
    LiveAfter[B].assign(Instrs.size(), 0);
    RegMask Live = BlockLiveOut[B];
    for (size_t I = Instrs.size(); I-- > 0;) {
      LiveAfter[B][I] = Live;
      Live = (Live & ~Instrs[I].defs()) | Instrs[I].uses();
      LiveBefore[B][I] = Live;
    }
  }
}
