//===- mir/Program.h - Modules, programs, symbols ---------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns a symbol pool and a list of Modules; each Module owns
/// machine functions and global data. This mirrors the iOS build pipeline's
/// unit structure: the app is hundreds of independently compiled modules
/// that the linker combines into one binary (paper Section II).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_PROGRAM_H
#define MCO_MIR_PROGRAM_H

#include "mir/MachineFunction.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mco {

/// A chunk of initialized global data.
struct GlobalData {
  uint32_t Name = 0;
  std::vector<uint8_t> Bytes;
  /// The module the data was written in; the PreserveModuleOrder data
  /// layout (paper Section VI) keeps same-module globals adjacent.
  uint32_t OriginModule = 0;
};

/// A compilation unit: functions plus global data.
class Module {
public:
  std::string Name;
  std::vector<MachineFunction> Functions;
  std::vector<GlobalData> Globals;

  uint64_t numInstrs() const {
    uint64_t N = 0;
    for (const MachineFunction &MF : Functions)
      N += MF.numInstrs();
    return N;
  }

  /// \returns the code size in bytes of every function in the module.
  uint64_t codeSize() const { return numInstrs() * InstrBytes; }

  uint64_t dataSize() const {
    uint64_t N = 0;
    for (const GlobalData &G : Globals)
      N += G.Bytes.size();
    return N;
  }
};

/// A whole program: a symbol pool shared by all modules, plus the modules.
///
/// Symbol ids are stable for the lifetime of the Program, so the linker can
/// merge modules without rewriting instruction operands.
class Program {
public:
  std::vector<std::unique_ptr<Module>> Modules;

  Module &addModule(const std::string &Name) {
    Modules.push_back(std::make_unique<Module>());
    Modules.back()->Name = Name;
    return *Modules.back();
  }

  /// Interns \p Name, returning its stable symbol id.
  uint32_t internSymbol(const std::string &Name) {
    auto It = SymbolIds.find(Name);
    if (It != SymbolIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(SymbolNames.size());
    SymbolNames.push_back(Name);
    SymbolIds.emplace(Name, Id);
    return Id;
  }

  /// \returns the name for symbol \p Id.
  const std::string &symbolName(uint32_t Id) const {
    assert(Id < SymbolNames.size() && "unknown symbol id");
    return SymbolNames[Id];
  }

  /// \returns the symbol id if \p Name is interned, or UINT32_MAX.
  uint32_t lookupSymbol(const std::string &Name) const {
    auto It = SymbolIds.find(Name);
    return It == SymbolIds.end() ? UINT32_MAX : It->second;
  }

  uint32_t numSymbols() const {
    return static_cast<uint32_t>(SymbolNames.size());
  }

  /// Total instruction count across all modules.
  uint64_t numInstrs() const {
    uint64_t N = 0;
    for (const auto &M : Modules)
      N += M->numInstrs();
    return N;
  }

  /// Total code size in bytes across all modules.
  uint64_t codeSize() const { return numInstrs() * InstrBytes; }

  /// Total global data size in bytes across all modules.
  uint64_t dataSize() const {
    uint64_t N = 0;
    for (const auto &M : Modules)
      N += M->dataSize();
    return N;
  }

  /// Creates a unique name for round-\p Round outlined function number
  /// \p Index, mirroring LLVM's OUTLINED_FUNCTION_* naming that app
  /// developers saw in crash stacks (paper Section VI, challenge 4).
  std::string makeOutlinedName(unsigned Round, unsigned Index) {
    return "OUTLINED_FUNCTION_" + std::to_string(Round) + "_" +
           std::to_string(Index);
  }

private:
  std::vector<std::string> SymbolNames;
  std::unordered_map<std::string, uint32_t> SymbolIds;
};

} // namespace mco

#endif // MCO_MIR_PROGRAM_H
