//===- mir/Program.h - Modules, programs, symbols ---------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program owns a symbol pool and a list of Modules; each Module owns
/// machine functions and global data. This mirrors the iOS build pipeline's
/// unit structure: the app is hundreds of independently compiled modules
/// that the linker combines into one binary (paper Section II).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_PROGRAM_H
#define MCO_MIR_PROGRAM_H

#include "mir/MachineFunction.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mco {

/// A chunk of initialized global data.
struct GlobalData {
  uint32_t Name = 0;
  std::vector<uint8_t> Bytes;
  /// The module the data was written in; the PreserveModuleOrder data
  /// layout (paper Section VI) keeps same-module globals adjacent.
  uint32_t OriginModule = 0;
};

/// A compilation unit: functions plus global data.
class Module {
public:
  std::string Name;
  std::vector<MachineFunction> Functions;
  std::vector<GlobalData> Globals;

  uint64_t numInstrs() const {
    uint64_t N = 0;
    for (const MachineFunction &MF : Functions)
      N += MF.numInstrs();
    return N;
  }

  /// \returns the code size in bytes of every function in the module.
  uint64_t codeSize() const { return numInstrs() * InstrBytes; }

  uint64_t dataSize() const {
    uint64_t N = 0;
    for (const GlobalData &G : Globals)
      N += G.Bytes.size();
    return N;
  }
};

/// Anything that can intern symbol names. Program is the canonical
/// implementation; DeferredSymbolBatch lets concurrent per-module passes
/// allocate names without touching the shared Program.
class SymbolInterner {
public:
  virtual ~SymbolInterner() = default;

  /// Interns \p Name, returning its stable symbol id.
  virtual uint32_t internSymbol(const std::string &Name) = 0;
};

/// A whole program: a symbol pool shared by all modules, plus the modules.
///
/// Symbol ids are stable for the lifetime of the Program, so the linker can
/// merge modules without rewriting instruction operands.
class Program : public SymbolInterner {
public:
  std::vector<std::unique_ptr<Module>> Modules;

  Module &addModule(const std::string &Name) {
    Modules.push_back(std::make_unique<Module>());
    Modules.back()->Name = Name;
    return *Modules.back();
  }

  /// Interns \p Name, returning its stable symbol id.
  uint32_t internSymbol(const std::string &Name) override {
    auto It = SymbolIds.find(Name);
    if (It != SymbolIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(SymbolNames.size());
    SymbolNames.push_back(Name);
    SymbolIds.emplace(Name, Id);
    return Id;
  }

  /// \returns the name for symbol \p Id.
  const std::string &symbolName(uint32_t Id) const {
    assert(Id < SymbolNames.size() && "unknown symbol id");
    return SymbolNames[Id];
  }

  /// \returns the symbol id if \p Name is interned, or UINT32_MAX.
  uint32_t lookupSymbol(const std::string &Name) const {
    auto It = SymbolIds.find(Name);
    return It == SymbolIds.end() ? UINT32_MAX : It->second;
  }

  uint32_t numSymbols() const {
    return static_cast<uint32_t>(SymbolNames.size());
  }

  /// Total instruction count across all modules.
  uint64_t numInstrs() const {
    uint64_t N = 0;
    for (const auto &M : Modules)
      N += M->numInstrs();
    return N;
  }

  /// Total code size in bytes across all modules.
  uint64_t codeSize() const { return numInstrs() * InstrBytes; }

  /// Total global data size in bytes across all modules.
  uint64_t dataSize() const {
    uint64_t N = 0;
    for (const auto &M : Modules)
      N += M->dataSize();
    return N;
  }

  /// Creates a unique name for round-\p Round outlined function number
  /// \p Index, mirroring LLVM's OUTLINED_FUNCTION_* naming that app
  /// developers saw in crash stacks (paper Section VI, challenge 4).
  std::string makeOutlinedName(unsigned Round, unsigned Index) {
    return "OUTLINED_FUNCTION_" + std::to_string(Round) + "_" +
           std::to_string(Index);
  }

private:
  std::vector<std::string> SymbolNames;
  std::unordered_map<std::string, uint32_t> SymbolIds;
};

/// Collects new symbol names on behalf of one module while other modules
/// are processed concurrently. New names receive placeholder ids from a
/// private high range; commit() interns them into the shared Program in
/// allocation order — exactly the order a serial module-by-module run
/// would have used, so the final id assignment is bit-identical — and
/// rewrites the module's placeholder references to the real ids.
///
/// While batches are live the shared Program's symbol pool must not be
/// mutated (lookupSymbol is the only access, and it is read-only).
class DeferredSymbolBatch final : public SymbolInterner {
public:
  /// Placeholder ids start here; real symbol pools must stay below.
  static constexpr uint32_t TempBase = 0x80000000u;
  /// Maximum placeholder ids per batch.
  static constexpr uint32_t TempRange = 0x100000u;

  /// \p BatchIdx keeps concurrent batches' placeholder ranges disjoint.
  DeferredSymbolBatch(const Program &Prog, uint32_t BatchIdx)
      : Shared(Prog), Base(TempBase + BatchIdx * TempRange) {
    assert(Prog.numSymbols() < TempBase && "symbol pool reached temp range");
  }

  uint32_t internSymbol(const std::string &Name) override {
    uint32_t Existing = Shared.lookupSymbol(Name);
    if (Existing != UINT32_MAX)
      return Existing;
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    assert(Names.size() < TempRange && "symbol batch overflow");
    uint32_t Id = Base + static_cast<uint32_t>(Names.size());
    Names.push_back(Name);
    Ids.emplace(Name, Id);
    return Id;
  }

  /// \returns the batched name behind placeholder id \p Id, or nullptr when
  /// \p Id is not one of this batch's placeholders. Lets serializers resolve
  /// names for a module whose batch has not been committed yet.
  const std::string *placeholderName(uint32_t Id) const {
    if (Id < Base || Id - Base >= Names.size())
      return nullptr;
    return &Names[Id - Base];
  }

  /// Interns the batched names into \p Dst and rewrites placeholder ids in
  /// \p M (function names, symbol operands, global names). Call serially,
  /// in the order the modules would have been processed serially.
  void commit(Program &Dst, Module &M) const {
    if (Names.empty())
      return;
    std::vector<uint32_t> Real(Names.size());
    for (size_t I = 0; I < Names.size(); ++I)
      Real[I] = Dst.internSymbol(Names[I]);
    auto Remap = [&](uint32_t Sym) {
      return Sym >= Base && Sym < Base + Names.size() ? Real[Sym - Base]
                                                      : Sym;
    };
    for (MachineFunction &MF : M.Functions) {
      MF.Name = Remap(MF.Name);
      for (MachineBasicBlock &MBB : MF.Blocks)
        for (MachineInstr &MI : MBB.Instrs)
          for (unsigned I = 0; I < MI.numOperands(); ++I)
            if (MI.operand(I).isSym())
              MI.operand(I) =
                  MachineOperand::sym(Remap(MI.operand(I).getSym()));
    }
    for (GlobalData &G : M.Globals)
      G.Name = Remap(G.Name);
  }

private:
  const Program &Shared;
  uint32_t Base;
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> Ids;
};

} // namespace mco

#endif // MCO_MIR_PROGRAM_H
