//===- mir/MachineFunction.h - Blocks, functions ----------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine basic blocks and machine functions. A function is a list of
/// blocks; block 0 is the entry. Control flow between blocks is expressed by
/// branch instructions carrying Block operands, with implicit fallthrough
/// from a block whose last instruction can fall through.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_MIR_MACHINEFUNCTION_H
#define MCO_MIR_MACHINEFUNCTION_H

#include "mir/MachineInstr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// A straight-line sequence of machine instructions.
class MachineBasicBlock {
public:
  std::vector<MachineInstr> Instrs;

  unsigned size() const { return static_cast<unsigned>(Instrs.size()); }
  bool empty() const { return Instrs.empty(); }

  void push(MachineInstr MI) { Instrs.push_back(MI); }
};

/// How an outlined function must build its frame; meaningful only for
/// functions created by the outliner.
enum class OutlinedFrameKind : uint8_t {
  NotOutlined,   ///< A regular function.
  AppendedRet,   ///< Body had no terminator; a RET was appended.
  SavesLRInFrame,///< Body clobbers LR; frame saves/restores LR around it.
  TailCall,      ///< Body ends with the original RET (no frame added).
  Thunk,         ///< Body's final call became a tail call.
};

/// A machine function: named, with an entry block at index 0.
class MachineFunction {
public:
  /// Symbol id of the function's name (see Program::symbolName).
  uint32_t Name = 0;
  std::vector<MachineBasicBlock> Blocks;
  /// True for OUTLINED_FUNCTION_* created by the outliner.
  bool IsOutlined = false;
  /// For outlined functions: how many call sites were rewritten to call
  /// this function (a static hotness proxy used by the outlined-code
  /// layout optimization, the paper's future work #3).
  uint32_t OutlinedCallSites = 0;
  OutlinedFrameKind FrameKind = OutlinedFrameKind::NotOutlined;
  /// Index of the module this function originated from (set by the
  /// synthesizer/codegen; preserved by the linker for layout decisions).
  uint32_t OriginModule = 0;

  MachineBasicBlock &addBlock() {
    Blocks.emplace_back();
    return Blocks.back();
  }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  /// \returns the total number of instructions.
  uint64_t numInstrs() const {
    uint64_t N = 0;
    for (const MachineBasicBlock &MBB : Blocks)
      N += MBB.size();
    return N;
  }

  /// \returns the code size in bytes (4 bytes per instruction).
  uint64_t codeSize() const { return numInstrs() * InstrBytes; }

  /// \returns the block indices control may reach from block \p BlockIdx.
  std::vector<uint32_t> successors(uint32_t BlockIdx) const;
};

} // namespace mco

#endif // MCO_MIR_MACHINEFUNCTION_H
