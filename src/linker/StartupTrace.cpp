//===- linker/StartupTrace.cpp - Fleet startup-trace profiles -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/StartupTrace.h"

#include "support/FileAtomics.h"
#include "support/FormatValidator.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mco;

uint32_t TraceProfile::functionId(const std::string &Name) {
  auto It = NameToId.find(Name);
  if (It != NameToId.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Functions.size());
  Functions.push_back(Name);
  NameToId.emplace(Name, Id);
  return Id;
}

uint64_t TraceProfile::totalEntries() const {
  uint64_t N = 0;
  for (const DeviceTrace &D : Devices)
    N += D.Entries.size();
  return N;
}

uint64_t TraceProfile::totalTextFaults() const {
  uint64_t N = 0;
  for (const DeviceTrace &D : Devices)
    N += D.TextFaults;
  return N;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out;
}

} // namespace

std::string mco::traceProfileJson(const TraceProfile &P) {
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-traces-v1\",\n";
  Out += "  \"page_bytes\": " + std::to_string(P.PageBytes) + ",\n";
  Out += "  \"functions\": [";
  for (size_t I = 0; I < P.Functions.size(); ++I)
    Out += (I ? ", " : "") + ("\"" + jsonEscape(P.Functions[I]) + "\"");
  Out += "],\n";
  Out += "  \"devices\": [\n";
  for (size_t I = 0; I < P.Devices.size(); ++I) {
    const DeviceTrace &D = P.Devices[I];
    Out += "    {\"device\": " + std::to_string(D.Device) + ",\n";
    Out += "     \"entries\": [";
    for (size_t J = 0; J < D.Entries.size(); ++J)
      Out += (J ? "," : "") + std::to_string(D.Entries[J]);
    Out += "],\n";
    Out += "     \"calls\": [";
    for (size_t J = 0; J < D.Calls.size(); ++J) {
      const TraceCallEdge &E = D.Calls[J];
      Out += (J ? "," : "") +
             ("[" + std::to_string(E.Caller) + "," + std::to_string(E.Callee) +
              "," + std::to_string(E.Count) + "]");
    }
    Out += "],\n";
    Out += "     \"page_touches\": [";
    for (size_t J = 0; J < D.PageTouches.size(); ++J)
      Out += (J ? "," : "") + std::to_string(D.PageTouches[J]);
    Out += "],\n";
    Out += "     \"text_faults\": " + std::to_string(D.TextFaults) + "}";
    Out += I + 1 < P.Devices.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

Status mco::writeTraceProfile(const TraceProfile &P, const std::string &Path) {
  return atomicWriteFile(Path, traceProfileJson(P));
}

namespace {

/// Longest string any mco-traces-v1 document legitimately contains (a
/// mangled function name); anything longer is damage or an attack on the
/// parser's memory, not data.
constexpr size_t TraceMaxStringBytes = 1u << 20;

/// A minimal recursive-descent JSON reader, sufficient for the fixed
/// `mco-traces-v1` shape (objects, arrays, strings, unsigned integers).
/// No external JSON dependency is available in this toolchain. Untrusted
/// input: every read is bounds-checked, numbers are overflow-checked, and
/// nesting spends a recursion budget.
class JsonCursor {
public:
  explicit JsonCursor(const std::string &S) : S(S) {}

  Status fail(const std::string &Msg) const {
    return MCO_CORRUPT("traces JSON: " + Msg + " at byte " +
                       std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  Status expect(char C) {
    if (!consume(C))
      return fail(std::string("expected '") + C + "'");
    return Status::success();
  }

  Status parseString(std::string &Out) {
    if (Status St = expect('"'); !St.ok())
      return St;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (Out.size() >= TraceMaxStringBytes)
        return fail("string too long");
      char Ch = S[Pos++];
      if (Ch == '\\' && Pos < S.size())
        Ch = S[Pos++];
      Out += Ch;
    }
    if (Pos >= S.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return Status::success();
  }

  Status parseUInt(uint64_t &Out) {
    skipWs();
    if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
      return fail("expected number");
    Out = 0;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
      uint64_t Digit = uint64_t(S[Pos] - '0');
      // Overflow check: a 21+-digit number is damage, and wrapping would
      // silently turn it into a plausible id.
      if (Out > (UINT64_MAX - Digit) / 10)
        return fail("number too large");
      Out = Out * 10 + Digit;
      ++Pos;
    }
    return Status::success();
  }

  /// Skips any value (used for unknown keys, forward compatibility). The
  /// nesting budget bounds how deep a hostile document can push the scan.
  Status skipValue() {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '"') {
      std::string Tmp;
      return parseString(Tmp);
    }
    if (C == '{' || C == '[') {
      ++Pos;
      // One iterative scan over both bracket kinds, depth-budgeted.
      char Stack[validate::JsonMaxDepth];
      unsigned Depth = 0;
      Stack[Depth++] = C == '{' ? '}' : ']';
      bool InStr = false;
      while (Pos < S.size() && Depth > 0) {
        char Ch = S[Pos++];
        if (InStr) {
          if (Ch == '\\')
            ++Pos;
          else if (Ch == '"')
            InStr = false;
        } else if (Ch == '"') {
          InStr = true;
        } else if (Ch == '{' || Ch == '[') {
          if (Depth >= validate::JsonMaxDepth)
            return fail("value nests too deep");
          Stack[Depth++] = Ch == '{' ? '}' : ']';
        } else if (Ch == '}' || Ch == ']') {
          if (Ch != Stack[Depth - 1])
            return fail("mismatched bracket");
          --Depth;
        }
      }
      return Depth == 0 ? Status::success() : fail("unbalanced value");
    }
    // Number / literal: consume until a delimiter.
    while (Pos < S.size() && S[Pos] != ',' && S[Pos] != '}' && S[Pos] != ']' &&
           S[Pos] != ' ' && S[Pos] != '\n' && S[Pos] != '\t' && S[Pos] != '\r')
      ++Pos;
    return Status::success();
  }

  /// Iterates `"key": value` pairs of an object; \p OnKey parses the value.
  template <typename Fn> Status parseObject(Fn OnKey) {
    if (Status St = expect('{'); !St.ok())
      return St;
    if (consume('}'))
      return Status::success();
    for (;;) {
      std::string Key;
      if (Status St = parseString(Key); !St.ok())
        return St;
      if (Status St = expect(':'); !St.ok())
        return St;
      if (Status St = OnKey(Key); !St.ok())
        return St;
      if (consume(','))
        continue;
      return expect('}');
    }
  }

  /// Iterates the elements of an array; \p OnElem parses each.
  template <typename Fn> Status parseArray(Fn OnElem) {
    if (Status St = expect('['); !St.ok())
      return St;
    if (consume(']'))
      return Status::success();
    for (;;) {
      if (Status St = OnElem(); !St.ok())
        return St;
      if (consume(','))
        continue;
      return expect(']');
    }
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

} // namespace

Expected<TraceProfile> mco::parseTraceProfile(const std::string &Json) {
  TraceProfile P;
  P.PageBytes = 0;
  std::string Schema;
  std::vector<std::string> Functions;
  JsonCursor C(Json);

  Status St = C.parseObject([&](const std::string &Key) -> Status {
    if (Key == "schema")
      return C.parseString(Schema);
    if (Key == "page_bytes")
      return C.parseUInt(P.PageBytes);
    if (Key == "functions")
      return C.parseArray([&]() -> Status {
        std::string Name;
        if (Status S2 = C.parseString(Name); !S2.ok())
          return S2;
        Functions.push_back(std::move(Name));
        return Status::success();
      });
    if (Key == "devices")
      return C.parseArray([&]() -> Status {
        DeviceTrace D;
        Status S2 = C.parseObject([&](const std::string &DK) -> Status {
          if (DK == "device") {
            uint64_t V = 0;
            Status S3 = C.parseUInt(V);
            D.Device = static_cast<uint32_t>(V);
            return S3;
          }
          if (DK == "entries")
            return C.parseArray([&]() -> Status {
              uint64_t V = 0;
              Status S3 = C.parseUInt(V);
              D.Entries.push_back(static_cast<uint32_t>(V));
              return S3;
            });
          if (DK == "calls")
            return C.parseArray([&]() -> Status {
              TraceCallEdge E;
              uint64_t V0 = 0, V1 = 0;
              if (Status S3 = C.expect('['); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(V0); !S3.ok())
                return S3;
              if (Status S3 = C.expect(','); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(V1); !S3.ok())
                return S3;
              if (Status S3 = C.expect(','); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(E.Count); !S3.ok())
                return S3;
              if (Status S3 = C.expect(']'); !S3.ok())
                return S3;
              E.Caller = static_cast<uint32_t>(V0);
              E.Callee = static_cast<uint32_t>(V1);
              D.Calls.push_back(E);
              return Status::success();
            });
          if (DK == "page_touches")
            return C.parseArray([&]() -> Status {
              uint64_t V = 0;
              Status S3 = C.parseUInt(V);
              D.PageTouches.push_back(V);
              return S3;
            });
          if (DK == "text_faults")
            return C.parseUInt(D.TextFaults);
          return C.skipValue();
        });
        if (!S2.ok())
          return S2;
        P.Devices.push_back(std::move(D));
        return Status::success();
      });
    return C.skipValue();
  });
  if (!St.ok())
    return St;

  if (Schema != "mco-traces-v1")
    return MCO_CORRUPT("traces JSON: unsupported schema '" + Schema +
                       "' (want mco-traces-v1)");
  if (P.PageBytes == 0)
    P.PageBytes = 16384;
  // Re-intern function names so functionId() works on the parsed profile.
  for (const std::string &Name : Functions)
    P.functionId(Name);
  // FormatValidator pass before any consumer indexes with these ids.
  if (Status V = validateTraceProfile(P); !V.ok())
    return V;
  return P;
}

Status mco::validateTraceProfile(const TraceProfile &P) {
  if (Status S = validate::countWithin(P.Functions.size(), 1u << 20,
                                       "traces function");
      !S.ok())
    return S;
  if (Status S = validate::countWithin(P.Devices.size(), 1u << 16,
                                       "traces device");
      !S.ok())
    return S;
  const uint32_t NumFuncs = static_cast<uint32_t>(P.Functions.size());
  for (const DeviceTrace &D : P.Devices) {
    if (Status S = validate::countWithin(D.Entries.size(), 1u << 22,
                                         "traces entry");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(D.Calls.size(), 1u << 22,
                                         "traces call edge");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(D.PageTouches.size(), 1u << 22,
                                         "traces page touch");
        !S.ok())
      return S;
    for (uint32_t Id : D.Entries)
      if (Status S = validate::indexInRange(Id, NumFuncs, "traces entry");
          !S.ok())
        return S;
    for (const TraceCallEdge &E : D.Calls) {
      if (Status S = validate::indexInRange(E.Caller, NumFuncs,
                                            "traces call caller");
          !S.ok())
        return S;
      if (Status S = validate::indexInRange(E.Callee, NumFuncs,
                                            "traces call callee");
          !S.ok())
        return S;
    }
  }
  return Status::success();
}

Expected<TraceProfile> mco::readTraceProfile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return MCO_ERROR("cannot open traces file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Expected<TraceProfile> P = parseTraceProfile(Buf.str());
  if (!P.ok())
    return MCO_ERROR("'" + Path + "': " + P.status().message());
  return P;
}
