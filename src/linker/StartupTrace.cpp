//===- linker/StartupTrace.cpp - Fleet startup-trace profiles -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/StartupTrace.h"

#include "support/FileAtomics.h"
#include "support/FormatValidator.h"
#include "support/JsonCursor.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mco;

uint32_t TraceProfile::functionId(const std::string &Name) {
  auto It = NameToId.find(Name);
  if (It != NameToId.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Functions.size());
  Functions.push_back(Name);
  NameToId.emplace(Name, Id);
  return Id;
}

uint64_t TraceProfile::totalEntries() const {
  uint64_t N = 0;
  for (const DeviceTrace &D : Devices)
    N += D.Entries.size();
  return N;
}

uint64_t TraceProfile::totalTextFaults() const {
  uint64_t N = 0;
  for (const DeviceTrace &D : Devices)
    N += D.TextFaults;
  return N;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  return Out;
}

} // namespace

std::string mco::traceProfileJson(const TraceProfile &P) {
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-traces-v1\",\n";
  Out += "  \"page_bytes\": " + std::to_string(P.PageBytes) + ",\n";
  Out += "  \"functions\": [";
  for (size_t I = 0; I < P.Functions.size(); ++I)
    Out += (I ? ", " : "") + ("\"" + jsonEscape(P.Functions[I]) + "\"");
  Out += "],\n";
  Out += "  \"devices\": [\n";
  for (size_t I = 0; I < P.Devices.size(); ++I) {
    const DeviceTrace &D = P.Devices[I];
    Out += "    {\"device\": " + std::to_string(D.Device) + ",\n";
    Out += "     \"entries\": [";
    for (size_t J = 0; J < D.Entries.size(); ++J)
      Out += (J ? "," : "") + std::to_string(D.Entries[J]);
    Out += "],\n";
    Out += "     \"calls\": [";
    for (size_t J = 0; J < D.Calls.size(); ++J) {
      const TraceCallEdge &E = D.Calls[J];
      Out += (J ? "," : "") +
             ("[" + std::to_string(E.Caller) + "," + std::to_string(E.Callee) +
              "," + std::to_string(E.Count) + "]");
    }
    Out += "],\n";
    Out += "     \"page_touches\": [";
    for (size_t J = 0; J < D.PageTouches.size(); ++J)
      Out += (J ? "," : "") + std::to_string(D.PageTouches[J]);
    Out += "],\n";
    Out += "     \"text_faults\": " + std::to_string(D.TextFaults) + "}";
    Out += I + 1 < P.Devices.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

Status mco::writeTraceProfile(const TraceProfile &P, const std::string &Path) {
  return atomicWriteFile(Path, traceProfileJson(P));
}

Expected<TraceProfile> mco::parseTraceProfile(const std::string &Json) {
  TraceProfile P;
  P.PageBytes = 0;
  std::string Schema;
  std::vector<std::string> Functions;
  JsonCursor C(Json, "traces JSON");

  Status St = C.parseObject([&](const std::string &Key) -> Status {
    if (Key == "schema")
      return C.parseString(Schema);
    if (Key == "page_bytes")
      return C.parseUInt(P.PageBytes);
    if (Key == "functions")
      return C.parseArray([&]() -> Status {
        std::string Name;
        if (Status S2 = C.parseString(Name); !S2.ok())
          return S2;
        Functions.push_back(std::move(Name));
        return Status::success();
      });
    if (Key == "devices")
      return C.parseArray([&]() -> Status {
        DeviceTrace D;
        Status S2 = C.parseObject([&](const std::string &DK) -> Status {
          if (DK == "device") {
            uint64_t V = 0;
            Status S3 = C.parseUInt(V);
            D.Device = static_cast<uint32_t>(V);
            return S3;
          }
          if (DK == "entries")
            return C.parseArray([&]() -> Status {
              uint64_t V = 0;
              Status S3 = C.parseUInt(V);
              D.Entries.push_back(static_cast<uint32_t>(V));
              return S3;
            });
          if (DK == "calls")
            return C.parseArray([&]() -> Status {
              TraceCallEdge E;
              uint64_t V0 = 0, V1 = 0;
              if (Status S3 = C.expect('['); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(V0); !S3.ok())
                return S3;
              if (Status S3 = C.expect(','); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(V1); !S3.ok())
                return S3;
              if (Status S3 = C.expect(','); !S3.ok())
                return S3;
              if (Status S3 = C.parseUInt(E.Count); !S3.ok())
                return S3;
              if (Status S3 = C.expect(']'); !S3.ok())
                return S3;
              E.Caller = static_cast<uint32_t>(V0);
              E.Callee = static_cast<uint32_t>(V1);
              D.Calls.push_back(E);
              return Status::success();
            });
          if (DK == "page_touches")
            return C.parseArray([&]() -> Status {
              uint64_t V = 0;
              Status S3 = C.parseUInt(V);
              D.PageTouches.push_back(V);
              return S3;
            });
          if (DK == "text_faults")
            return C.parseUInt(D.TextFaults);
          return C.skipValue();
        });
        if (!S2.ok())
          return S2;
        P.Devices.push_back(std::move(D));
        return Status::success();
      });
    return C.skipValue();
  });
  if (!St.ok())
    return St;

  if (Schema != "mco-traces-v1")
    return MCO_CORRUPT("traces JSON: unsupported schema '" + Schema +
                       "' (want mco-traces-v1)");
  if (P.PageBytes == 0)
    P.PageBytes = TextPageBytes16K;
  // Re-intern function names so functionId() works on the parsed profile.
  for (const std::string &Name : Functions)
    P.functionId(Name);
  // FormatValidator pass before any consumer indexes with these ids.
  if (Status V = validateTraceProfile(P); !V.ok())
    return V;
  return P;
}

Status mco::validateTraceProfile(const TraceProfile &P) {
  if (Status S = validate::countWithin(P.Functions.size(), 1u << 20,
                                       "traces function");
      !S.ok())
    return S;
  if (Status S = validate::countWithin(P.Devices.size(), 1u << 16,
                                       "traces device");
      !S.ok())
    return S;
  const uint32_t NumFuncs = static_cast<uint32_t>(P.Functions.size());
  for (const DeviceTrace &D : P.Devices) {
    if (Status S = validate::countWithin(D.Entries.size(), 1u << 22,
                                         "traces entry");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(D.Calls.size(), 1u << 22,
                                         "traces call edge");
        !S.ok())
      return S;
    if (Status S = validate::countWithin(D.PageTouches.size(), 1u << 22,
                                         "traces page touch");
        !S.ok())
      return S;
    for (uint32_t Id : D.Entries)
      if (Status S = validate::indexInRange(Id, NumFuncs, "traces entry");
          !S.ok())
        return S;
    for (const TraceCallEdge &E : D.Calls) {
      if (Status S = validate::indexInRange(E.Caller, NumFuncs,
                                            "traces call caller");
          !S.ok())
        return S;
      if (Status S = validate::indexInRange(E.Callee, NumFuncs,
                                            "traces call callee");
          !S.ok())
        return S;
    }
  }
  return Status::success();
}

Expected<TraceProfile> mco::readTraceProfile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return MCO_ERROR("cannot open traces file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Expected<TraceProfile> P = parseTraceProfile(Buf.str());
  if (!P.ok())
    return MCO_ERROR("'" + Path + "': " + P.status().message());
  return P;
}
