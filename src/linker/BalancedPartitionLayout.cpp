//===- linker/BalancedPartitionLayout.cpp - bp layout strategy ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The `bp` strategy: balanced-partitioning function layout after
/// "Optimizing Function Layout for Mobile Applications" (arxiv 2211.09285).
///
/// Each device's startup entry stream is cut into fixed-width windows of
/// consecutively executed functions; a window is a *utility*. Functions
/// sharing many utilities ran close together during startup, so placing
/// them on the same text pages turns N page faults into one. The layout
/// recursively bisects the traced function set, refining each split with
/// Kernighan–Lin-style swap passes that minimize the number of utilities
/// split across the two sides (objective per utility: min(left members,
/// right members) — a utility fully on one side costs nothing). Leaves
/// keep first-seen trace order; functions seen only on call edges follow
/// (warm), then untraced functions in module order.
///
/// Deterministic by construction: no RNG, index-based tie-breaks, and the
/// whole computation is single-threaded over data that is a pure function
/// of (program, traces) — so the plan is byte-identical at any -j.
///
//===----------------------------------------------------------------------===//

#include "linker/LayoutStrategy.h"

#include "mir/Program.h"

#include <algorithm>
#include <numeric>

using namespace mco;
using namespace mco::layout_detail;

namespace {

/// Entry-stream window width, in function entries. Small enough that a
/// window approximates one "moment" of startup, large enough to capture
/// cross-function locality.
constexpr size_t WindowEntries = 16;
/// Stop bisecting below this many functions — a leaf fits well inside a
/// page anyway.
constexpr size_t LeafSize = 4;
/// Swap-refinement passes per bisection node.
constexpr unsigned RefinePasses = 16;

class BalancedPartitionLayout : public LayoutStrategy {
public:
  std::string name() const override { return "bp"; }

  Expected<LayoutPlan> plan(const Program &Prog,
                            const TraceProfile &Traces) const override;
};

struct Bisector {
  /// Utility membership: per traced-slot utility ids, per-utility member
  /// slots.
  std::vector<std::vector<uint32_t>> SlotUtils;
  std::vector<std::vector<uint32_t>> UtilMembers;
  /// Per-utility side counts, valid for the node being refined (entries
  /// reset via TouchedUtils).
  std::vector<int> KLeft, KRight;
  /// 0 = outside the current node, 1 = left, 2 = right.
  std::vector<uint8_t> Side;
  std::vector<uint32_t> Out; ///< Bisected slot order, leaves appended.

  /// min(kL, kR) delta of moving one member from its side to the other;
  /// positive = improvement.
  static int moveGain(int KSame, int KOther) {
    return std::min(KSame, KOther) - std::min(KSame - 1, KOther + 1);
  }

  /// Fresh unilateral gain of moving \p S to the other side, from the
  /// current counts.
  int unilateralGain(uint32_t S) const {
    int G = 0;
    for (uint32_t U : SlotUtils[S])
      G += Side[S] == 1 ? moveGain(KLeft[U], KRight[U])
                        : moveGain(KRight[U], KLeft[U]);
    return G;
  }

  /// Actual objective delta of swapping \p A (left) with \p B (right):
  /// the two unilateral gains double-count utilities containing both — a
  /// swap leaves such a utility's counts unchanged — so the shared terms
  /// are subtracted out. SlotUtils lists are sorted, enabling a
  /// two-pointer intersection.
  int pairGain(uint32_t A, uint32_t B) const {
    int G = unilateralGain(A) + unilateralGain(B);
    const std::vector<uint32_t> &UA = SlotUtils[A], &UB = SlotUtils[B];
    size_t I = 0, J = 0;
    while (I < UA.size() && J < UB.size()) {
      if (UA[I] < UB[J])
        ++I;
      else if (UA[I] > UB[J])
        ++J;
      else {
        const uint32_t U = UA[I];
        G -= moveGain(KLeft[U], KRight[U]) + moveGain(KRight[U], KLeft[U]);
        ++I;
        ++J;
      }
    }
    return G;
  }

  void applySwap(uint32_t A, uint32_t B) {
    for (uint32_t U : SlotUtils[A]) {
      --KLeft[U];
      ++KRight[U];
    }
    for (uint32_t U : SlotUtils[B]) {
      ++KLeft[U];
      --KRight[U];
    }
    Side[A] = 2;
    Side[B] = 1;
  }

  void refine(std::vector<uint32_t> &Node, size_t Mid) {
    for (size_t I = 0; I < Node.size(); ++I)
      Side[Node[I]] = I < Mid ? 1 : 2;

    // Collect the utilities with members in this node and their counts.
    std::vector<uint32_t> TouchedUtils;
    for (uint32_t S : Node)
      for (uint32_t U : SlotUtils[S]) {
        if (KLeft[U] == 0 && KRight[U] == 0)
          TouchedUtils.push_back(U);
        (Side[S] == 1 ? KLeft[U] : KRight[U]) += 1;
      }

    // Candidate R partners examined per L candidate; a small window keeps
    // refinement near-linear while still escaping the symmetric-gain trap
    // a strict rank-for-rank pairing falls into.
    constexpr size_t PartnerWindow = 8;

    std::vector<std::pair<int, uint32_t>> GainL, GainR;
    for (unsigned Pass = 0; Pass < RefinePasses; ++Pass) {
      GainL.clear();
      GainR.clear();
      for (uint32_t S : Node)
        (Side[S] == 1 ? GainL : GainR).push_back({unilateralGain(S), S});
      // Highest gain first; ties broken by slot id for determinism.
      auto ByGain = [](const std::pair<int, uint32_t> &A,
                       const std::pair<int, uint32_t> &B) {
        return A.first != B.first ? A.first > B.first : A.second < B.second;
      };
      std::sort(GainL.begin(), GainL.end(), ByGain);
      std::sort(GainR.begin(), GainR.end(), ByGain);

      size_t Swaps = 0;
      std::vector<uint8_t> Used(GainR.size(), 0);
      for (const auto &[StaleG, A] : GainL) {
        (void)StaleG;
        if (Side[A] != 1)
          continue;
        int BestG = 0;
        size_t BestJ = SIZE_MAX;
        size_t Seen = 0;
        for (size_t J = 0; J < GainR.size() && Seen < PartnerWindow; ++J) {
          if (Used[J] || Side[GainR[J].second] != 2)
            continue;
          ++Seen;
          const int G = pairGain(A, GainR[J].second);
          if (G > BestG) {
            BestG = G;
            BestJ = J;
          }
        }
        if (BestJ == SIZE_MAX)
          continue;
        applySwap(A, GainR[BestJ].second);
        Used[BestJ] = 1;
        ++Swaps;
      }
      if (Swaps == 0)
        break;
    }

    // Re-partition the node in place, preserving relative order per side.
    std::vector<uint32_t> L, R;
    L.reserve(Mid);
    for (uint32_t S : Node)
      (Side[S] == 1 ? L : R).push_back(S);
    size_t W = 0;
    for (uint32_t S : L)
      Node[W++] = S;
    for (uint32_t S : R)
      Node[W++] = S;

    for (uint32_t U : TouchedUtils)
      KLeft[U] = KRight[U] = 0;
    for (uint32_t S : Node)
      Side[S] = 0;
  }

  void bisect(std::vector<uint32_t> Node, unsigned Depth) {
    if (Node.size() <= LeafSize || Depth >= 32) {
      Out.insert(Out.end(), Node.begin(), Node.end());
      return;
    }
    const size_t Mid = Node.size() / 2;
    refine(Node, Mid);
    // refine() leaves the left side first; Mid members stay on the left
    // because swaps are pairwise.
    std::vector<uint32_t> L(Node.begin(), Node.begin() + Mid);
    std::vector<uint32_t> R(Node.begin() + Mid, Node.end());
    bisect(std::move(L), Depth + 1);
    bisect(std::move(R), Depth + 1);
  }
};

Expected<LayoutPlan>
BalancedPartitionLayout::plan(const Program &Prog,
                              const TraceProfile &Traces) const {
  LayoutPlan P;
  P.Strategy = name();
  P.Data = dataLayout();

  const FunctionTable FT = flattenFunctions(Prog);
  const std::vector<uint32_t> Map = mapProfileToProgram(Prog, FT, Traces);

  // Traced functions in first-seen order across devices (device index
  // order, entry order within a device).
  std::vector<uint32_t> TracedFlat; // slot -> flat index
  std::vector<uint32_t> FlatToSlot(FT.size(), UINT32_MAX);
  for (const DeviceTrace &D : Traces.Devices)
    for (uint32_t Id : D.Entries) {
      if (Id >= Map.size() || Map[Id] == UINT32_MAX)
        continue;
      const uint32_t Flat = Map[Id];
      if (FlatToSlot[Flat] == UINT32_MAX) {
        FlatToSlot[Flat] = static_cast<uint32_t>(TracedFlat.size());
        TracedFlat.push_back(Flat);
      }
    }
  P.FunctionsTraced = TracedFlat.size();

  if (TracedFlat.size() > 1) {
    // Utilities: fixed-width windows over each device's entry stream,
    // deduplicated within the window.
    Bisector B;
    B.SlotUtils.resize(TracedFlat.size());
    std::vector<uint32_t> Window;
    for (const DeviceTrace &D : Traces.Devices) {
      for (size_t Off = 0; Off < D.Entries.size(); Off += WindowEntries) {
        Window.clear();
        const size_t End = std::min(Off + WindowEntries, D.Entries.size());
        for (size_t J = Off; J < End; ++J) {
          const uint32_t Id = D.Entries[J];
          if (Id >= Map.size() || Map[Id] == UINT32_MAX)
            continue;
          const uint32_t Slot = FlatToSlot[Map[Id]];
          if (std::find(Window.begin(), Window.end(), Slot) == Window.end())
            Window.push_back(Slot);
        }
        if (Window.size() < 2)
          continue; // A single-member utility cannot be split.
        const uint32_t U = static_cast<uint32_t>(B.UtilMembers.size());
        std::sort(Window.begin(), Window.end());
        for (uint32_t Slot : Window)
          B.SlotUtils[Slot].push_back(U);
        B.UtilMembers.push_back(Window);
      }
    }
    B.KLeft.assign(B.UtilMembers.size(), 0);
    B.KRight.assign(B.UtilMembers.size(), 0);
    B.Side.assign(TracedFlat.size(), 0);

    std::vector<uint32_t> All(TracedFlat.size());
    std::iota(All.begin(), All.end(), 0u);
    B.bisect(std::move(All), 0);

    P.Order.reserve(FT.size());
    for (uint32_t Slot : B.Out)
      P.Order.push_back(TracedFlat[Slot]);
  } else {
    P.Order.reserve(FT.size());
    for (uint32_t Flat : TracedFlat)
      P.Order.push_back(Flat);
  }

  // Warm tier: functions the fleet saw only on call edges (called past
  // the entry-stream cap) still execute during startup, so they follow
  // the bisected region rather than scattering through cold pages.
  // Truly untraced functions keep module order at the end.
  std::vector<uint8_t> Warm(FT.size(), 0);
  for (const DeviceTrace &D : Traces.Devices)
    for (const TraceCallEdge &E : D.Calls) {
      if (E.Caller < Map.size() && Map[E.Caller] != UINT32_MAX)
        Warm[Map[E.Caller]] = 1;
      if (E.Callee < Map.size() && Map[E.Callee] != UINT32_MAX)
        Warm[Map[E.Callee]] = 1;
    }
  for (uint32_t Flat = 0; Flat < FT.size(); ++Flat)
    if (FlatToSlot[Flat] == UINT32_MAX && Warm[Flat])
      P.Order.push_back(Flat);
  for (uint32_t Flat = 0; Flat < FT.size(); ++Flat)
    if (FlatToSlot[Flat] == UINT32_MAX && !Warm[Flat])
      P.Order.push_back(Flat);

  P.EstimatedTextFaults = estimateTextFaults(Prog, P.Order, Traces);
  return P;
}

} // namespace

namespace mco {
std::unique_ptr<LayoutStrategy> makeBalancedPartitionLayout() {
  return std::unique_ptr<LayoutStrategy>(new BalancedPartitionLayout());
}
} // namespace mco
