//===- linker/LayoutStrategy.h - Pluggable code-layout policies -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable function-layout strategies for BinaryImage. The paper's
/// Section VI shows layout — not just size — decides device performance;
/// this turns the linker's single hard-coded policy (module order) into a
/// strategy interface driven by fleet startup traces:
///
///  - `original`  module order, exactly the pre-strategy behaviour. The
///                default and the rollout baseline.
///  - `bp`        balanced-partitioning function layout ("Optimizing
///                Function Layout for Mobile Applications", arxiv
///                2211.09285): recursively bisects the traced function
///                set so functions sharing startup-trace utilities
///                (co-execution windows) land on the same side — and
///                ultimately the same 16 KiB text pages — minimizing
///                startup page faults.
///  - `stitch`    Codestitcher-style layout (arxiv 1810.00905): chains
///                hot caller->callee pairs from the weighted dynamic call
///                graph, merging chains only while they fit a 16 KiB page
///                budget, then orders chains by heat density.
///
/// A strategy is a pure function of (program, traces): deterministic at
/// any thread count, no RNG. It emits a LayoutPlan — a permutation of the
/// program's functions plus the strategy's data-layout affinity — which
/// BinaryImage::create applies. Instruction bytes and outlining stats are
/// untouched; only addresses move.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_LINKER_LAYOUTSTRATEGY_H
#define MCO_LINKER_LAYOUTSTRATEGY_H

#include "linker/Linker.h"
#include "linker/StartupTrace.h"
#include "support/PageSize.h"

#include <memory>
#include <string>
#include <vector>

namespace mco {

/// The output of a layout strategy: how BinaryImage should place code and
/// how linkProgram should order data.
struct LayoutPlan {
  std::string Strategy = "original";
  /// Permutation of the program's functions, as indices into the flat
  /// module-order enumeration (module 0's functions first, then module
  /// 1's, ...). Empty = keep module order.
  std::vector<uint32_t> Order;
  /// The strategy's data affinity (DataLayoutMode folded into the
  /// strategy interface; the legacy --data-layout flag overrides it).
  DataLayoutMode Data = DataLayoutMode::PreserveModuleOrder;
  /// First-touch text pages the plan's order costs over the profile's
  /// device entry streams (the quantity bp minimizes); 0 when no traces.
  uint64_t EstimatedTextFaults = 0;
  /// Wall-clock seconds spent planning.
  double Seconds = 0;
  /// Profile functions matched to program functions.
  uint64_t FunctionsTraced = 0;
  /// stitch only: laid-out chain sizes in bytes (page-budget invariant:
  /// every multi-function chain fits PageBudgetBytes).
  std::vector<uint64_t> ChainSizes;
};

/// A layout policy. Stateless apart from configuration; plan() may be
/// called concurrently on distinct programs.
class LayoutStrategy {
public:
  virtual ~LayoutStrategy() = default;

  virtual std::string name() const = 0;

  /// Computes the layout plan for \p Prog from \p Traces. Deterministic:
  /// a pure function of the arguments. Strategies that need traces fall
  /// back to the original order when \p Traces is empty (a cold build),
  /// never fail on it.
  virtual Expected<LayoutPlan> plan(const Program &Prog,
                                    const TraceProfile &Traces) const = 0;

  /// The strategy's data-layout affinity (satellite: DataLayoutMode is a
  /// property of the strategy, not a separate pipeline knob).
  DataLayoutMode dataLayout() const { return DataMode; }
  /// Folds the legacy --data-layout / --interleave-data flag in: an
  /// explicit override wins over the strategy's default affinity.
  void overrideDataLayout(DataLayoutMode M) { DataMode = M; }

protected:
  DataLayoutMode DataMode = DataLayoutMode::PreserveModuleOrder;
};

/// \returns the strategy registered under \p Name (original | bp |
/// stitch), or an error listing the valid names.
Expected<std::unique_ptr<LayoutStrategy>>
createLayoutStrategy(const std::string &Name);

/// The registered strategy names, in presentation order.
std::vector<std::string> layoutStrategyNames();

/// The 16 KiB page budget Codestitcher chains are packed under (the
/// shared text-page size; see support/PageSize.h).
inline constexpr uint64_t PageBudgetBytes = TextPageBytes16K;

/// Counts the first-touch text pages an order costs over the profile's
/// device entry streams: functions are laid out in \p Order, each device
/// touches the page span of every function it enters, and distinct pages
/// are summed across devices. The shared estimator behind
/// LayoutPlan::EstimatedTextFaults and the `linker.layout.*` metrics.
/// \p Order empty = module order.
uint64_t estimateTextFaults(const Program &Prog,
                            const std::vector<uint32_t> &Order,
                            const TraceProfile &Traces);

namespace layout_detail {

/// Flat module-order function enumeration shared by the strategies:
/// for each function, its interned symbol and its code size in bytes.
struct FunctionTable {
  std::vector<uint32_t> Syms;
  std::vector<uint64_t> Bytes;
  size_t size() const { return Syms.size(); }
};
FunctionTable flattenFunctions(const Program &Prog);

/// Maps profile function ids to flat function indices (UINT32_MAX when a
/// traced name does not exist in the program).
std::vector<uint32_t> mapProfileToProgram(const Program &Prog,
                                          const FunctionTable &FT,
                                          const TraceProfile &Traces);

} // namespace layout_detail

} // namespace mco

#endif // MCO_LINKER_LAYOUTSTRATEGY_H
