//===- linker/LayoutStrategy.cpp - Pluggable code-layout policies ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/LayoutStrategy.h"

#include "mir/Program.h"

#include <unordered_map>
#include <unordered_set>

using namespace mco;
using namespace mco::layout_detail;

FunctionTable mco::layout_detail::flattenFunctions(const Program &Prog) {
  FunctionTable FT;
  for (const auto &M : Prog.Modules)
    for (const MachineFunction &MF : M->Functions) {
      FT.Syms.push_back(MF.Name);
      FT.Bytes.push_back(MF.codeSize());
    }
  return FT;
}

std::vector<uint32_t>
mco::layout_detail::mapProfileToProgram(const Program &Prog,
                                        const FunctionTable &FT,
                                        const TraceProfile &Traces) {
  std::unordered_map<uint32_t, uint32_t> SymToFlat;
  SymToFlat.reserve(FT.size());
  for (size_t I = 0; I < FT.size(); ++I)
    SymToFlat.emplace(FT.Syms[I], static_cast<uint32_t>(I));

  std::vector<uint32_t> Map(Traces.Functions.size(), UINT32_MAX);
  for (size_t I = 0; I < Traces.Functions.size(); ++I) {
    uint32_t Sym = Prog.lookupSymbol(Traces.Functions[I]);
    if (Sym == UINT32_MAX)
      continue;
    auto It = SymToFlat.find(Sym);
    if (It != SymToFlat.end())
      Map[I] = It->second;
  }
  return Map;
}

uint64_t mco::estimateTextFaults(const Program &Prog,
                                 const std::vector<uint32_t> &Order,
                                 const TraceProfile &Traces) {
  const FunctionTable FT = flattenFunctions(Prog);
  const size_t N = FT.size();
  const uint64_t PageBytes =
      Traces.PageBytes ? Traces.PageBytes : TextPageBytes16K;

  // Address of each flat function under the given order.
  std::vector<uint64_t> Addr(N, 0);
  uint64_t A = 0;
  if (Order.empty()) {
    for (size_t I = 0; I < N; ++I) {
      Addr[I] = A;
      A += FT.Bytes[I];
    }
  } else {
    for (uint32_t Flat : Order) {
      Addr[Flat] = A;
      A += FT.Bytes[Flat];
    }
  }

  const std::vector<uint32_t> Map = mapProfileToProgram(Prog, FT, Traces);
  uint64_t Faults = 0;
  std::unordered_set<uint64_t> Pages;
  for (const DeviceTrace &D : Traces.Devices) {
    Pages.clear();
    for (uint32_t Id : D.Entries) {
      if (Id >= Map.size() || Map[Id] == UINT32_MAX)
        continue;
      const uint32_t Flat = Map[Id];
      const uint64_t First = Addr[Flat] / PageBytes;
      const uint64_t Bytes = FT.Bytes[Flat] ? FT.Bytes[Flat] : 1;
      const uint64_t Last = (Addr[Flat] + Bytes - 1) / PageBytes;
      for (uint64_t Pg = First; Pg <= Last; ++Pg)
        Pages.insert(Pg);
    }
    Faults += Pages.size();
  }
  return Faults;
}

namespace {

/// `original`: module order, the pre-strategy behaviour and the rollout
/// baseline. Emits an empty Order so BinaryImage takes its legacy path.
class OriginalLayout : public LayoutStrategy {
public:
  std::string name() const override { return "original"; }

  Expected<LayoutPlan> plan(const Program &Prog,
                            const TraceProfile &Traces) const override {
    LayoutPlan P;
    P.Strategy = name();
    P.Data = dataLayout();
    P.EstimatedTextFaults = estimateTextFaults(Prog, P.Order, Traces);
    return P;
  }
};

} // namespace

namespace mco {
// Defined in BalancedPartitionLayout.cpp / StitchLayout.cpp.
std::unique_ptr<LayoutStrategy> makeBalancedPartitionLayout();
std::unique_ptr<LayoutStrategy> makeStitchLayout();
} // namespace mco

Expected<std::unique_ptr<LayoutStrategy>>
mco::createLayoutStrategy(const std::string &Name) {
  if (Name == "original" || Name.empty())
    return std::unique_ptr<LayoutStrategy>(new OriginalLayout());
  if (Name == "bp")
    return makeBalancedPartitionLayout();
  if (Name == "stitch")
    return makeStitchLayout();
  std::string Valid;
  for (const std::string &N : layoutStrategyNames())
    Valid += (Valid.empty() ? "" : ", ") + N;
  return MCO_ERROR("unknown layout strategy '" + Name + "' (valid: " + Valid +
                   ")");
}

std::vector<std::string> mco::layoutStrategyNames() {
  return {"original", "bp", "stitch"};
}
