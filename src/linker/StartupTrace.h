//===- linker/StartupTrace.h - Fleet startup-trace profiles -----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile format feeding the layout strategies: per-device startup
/// traces captured by the fleet simulator. Each device records
///
///  - the ordered sequence of function entries its startup spans executed
///    (capped, first ~4K entries — startup is what layout optimizes),
///  - the aggregated caller->callee call counts (the weighted call graph
///    Codestitcher-style layout consumes), and
///  - the first-touch order of 16 KiB text pages plus the resulting
///    text-page fault count (the quantity balanced-partitioning layout
///    minimizes).
///
/// Functions are named symbolically (not by address), so a profile taken
/// from one build of a program can drive the layout of a later build as
/// long as symbol names persist — the same contract production PGO/layout
/// systems rely on. Serialized as `mco-traces-v1` JSON
/// (`mco-fleet --emit-traces`, consumed by `mco-build --profile FILE`).
///
/// This lives in the linker library (not telemetry) because the layout
/// strategies consume it and mco_linker must not depend on mco_telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_LINKER_STARTUPTRACE_H
#define MCO_LINKER_STARTUPTRACE_H

#include "support/Error.h"
#include "support/PageSize.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mco {

/// One aggregated caller->callee edge of a device's dynamic call graph.
struct TraceCallEdge {
  uint32_t Caller = 0; ///< TraceProfile function id.
  uint32_t Callee = 0; ///< TraceProfile function id.
  uint64_t Count = 0;
};

/// One device's startup trace.
struct DeviceTrace {
  uint32_t Device = 0;
  /// Ordered function entries (TraceProfile function ids), capped at the
  /// recorder's entry limit.
  std::vector<uint32_t> Entries;
  /// Aggregated call edges, sorted (Caller, Callee) ascending.
  std::vector<TraceCallEdge> Calls;
  /// Text pages in first-touch order (page index = offset / PageBytes).
  std::vector<uint64_t> PageTouches;
  /// Simulated text page faults (== PageTouches.size() under the
  /// first-touch model, kept explicit so re-serialized profiles survive
  /// entry capping).
  uint64_t TextFaults = 0;
};

/// A whole fleet's worth of startup traces.
struct TraceProfile {
  /// Function id -> symbol name. Ids are profile-local.
  std::vector<std::string> Functions;
  uint64_t PageBytes = TextPageBytes16K;
  std::vector<DeviceTrace> Devices;

  /// Interns \p Name, returning its stable profile-local id.
  uint32_t functionId(const std::string &Name);

  /// Total function entries recorded across all devices.
  uint64_t totalEntries() const;
  /// Total text page faults across all devices.
  uint64_t totalTextFaults() const;

private:
  std::unordered_map<std::string, uint32_t> NameToId;
};

/// Deterministic `mco-traces-v1` JSON rendering.
std::string traceProfileJson(const TraceProfile &P);

/// Atomically writes traceProfileJson to \p Path.
Status writeTraceProfile(const TraceProfile &P, const std::string &Path);

/// The `mco-traces-v1` FormatValidator pass: schema tag, size caps
/// (functions, devices, per-device arrays), and id-range checks (every
/// entry and call-edge id must name a declared function). parseTraceProfile
/// runs it on everything it parses; exposed separately so synthetic
/// profiles can be checked before use.
Status validateTraceProfile(const TraceProfile &P);

/// Parses an `mco-traces-v1` JSON document with a bounds-checked,
/// recursion-budgeted reader; all failures are CorruptInput with byte
/// offsets.
Expected<TraceProfile> parseTraceProfile(const std::string &Json);

/// Reads and parses an `mco-traces-v1` file.
Expected<TraceProfile> readTraceProfile(const std::string &Path);

/// Records one device's startup trace during simulation. The interpreter
/// calls the record hooks with *image function indices*; the fleet
/// harness converts those to symbolic TraceProfile ids afterwards. All
/// recording is deterministic: a pure function of the executed
/// instruction stream.
class StartupTraceRecorder {
public:
  /// \p MaxEntries caps the ordered entry record (call edges and page
  /// touches are never capped — they aggregate).
  explicit StartupTraceRecorder(size_t MaxEntries = 4096)
      : MaxEntries(MaxEntries) {}

  void recordEntry(uint32_t FuncIdx) {
    if (Entries.size() < MaxEntries)
      Entries.push_back(FuncIdx);
  }

  void recordCall(uint32_t CallerIdx, uint32_t CalleeIdx) {
    ++CallCounts[(uint64_t(CallerIdx) << 32) | CalleeIdx];
  }

  /// \p PageIdx is the 0-based text page index; callers invoke this only
  /// on first touch (the text-page model deduplicates).
  void recordPageTouch(uint64_t PageIdx) { PageTouches.push_back(PageIdx); }

  const std::vector<uint32_t> &entries() const { return Entries; }
  const std::vector<uint64_t> &pageTouches() const { return PageTouches; }
  /// Call edges keyed (caller << 32) | callee.
  const std::unordered_map<uint64_t, uint64_t> &callCounts() const {
    return CallCounts;
  }

private:
  size_t MaxEntries;
  std::vector<uint32_t> Entries;
  std::vector<uint64_t> PageTouches;
  std::unordered_map<uint64_t, uint64_t> CallCounts;
};

} // namespace mco

#endif // MCO_LINKER_STARTUPTRACE_H
