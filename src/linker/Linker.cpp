//===- linker/Linker.cpp - Module merging & image layout ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace mco;

Module &mco::linkProgram(Program &Prog, DataLayoutMode Mode) {
  auto Linked = std::make_unique<Module>();
  Linked->Name = "linked";

  for (auto &M : Prog.Modules) {
    for (MachineFunction &MF : M->Functions)
      Linked->Functions.push_back(std::move(MF));
    for (GlobalData &G : M->Globals)
      Linked->Globals.push_back(std::move(G));
  }

  if (Mode == DataLayoutMode::Interleaved) {
    // Stock llvm-link behaviour modeled as an affinity-destroying shuffle:
    // order globals by a hash of their symbol id, mixing modules together.
    std::sort(Linked->Globals.begin(), Linked->Globals.end(),
              [](const GlobalData &A, const GlobalData &B) {
                auto H = [](uint32_t X) {
                  X ^= X >> 16;
                  X *= 0x7FEB352Du;
                  X ^= X >> 15;
                  X *= 0x846CA68Bu;
                  X ^= X >> 16;
                  return X;
                };
                uint32_t HA = H(A.Name), HB = H(B.Name);
                if (HA != HB)
                  return HA < HB;
                return A.Name < B.Name;
              });
  } else {
    // Preserve module affinity: stable order by origin module.
    std::stable_sort(Linked->Globals.begin(), Linked->Globals.end(),
                     [](const GlobalData &A, const GlobalData &B) {
                       return A.OriginModule < B.OriginModule;
                     });
  }

  Prog.Modules.clear();
  Prog.Modules.push_back(std::move(Linked));
  return *Prog.Modules.back();
}

BinaryImage::BinaryImage(const Program &Prog) {
  uint64_t Addr = TextBase;
  for (const auto &M : Prog.Modules) {
    for (const MachineFunction &MF : M->Functions) {
      FuncLayout FL;
      FL.MF = &MF;
      FL.Addr = Addr;
      for (const MachineBasicBlock &MBB : MF.Blocks) {
        FL.BlockAddrs.push_back(Addr);
        for (const MachineInstr &MI : MBB.Instrs) {
          FlatInstrs.push_back(&MI);
          FlatFuncIdx.push_back(static_cast<uint32_t>(Funcs.size()));
          Addr += InstrBytes;
        }
      }
      auto [It, Inserted] =
          SymToFunc.emplace(MF.Name, static_cast<uint32_t>(Funcs.size()));
      (void)It;
      if (!Inserted) {
        std::fprintf(stderr, "linker error: duplicate symbol '%s'\n",
                     Prog.symbolName(MF.Name).c_str());
        std::abort();
      }
      Funcs.push_back(std::move(FL));
    }
  }
  CodeBytes = Addr - TextBase;

  // Data begins at the next page boundary.
  DataBaseAddr = (Addr + PageSize - 1) & ~(PageSize - 1);
  uint64_t DAddr = DataBaseAddr;
  for (const auto &M : Prog.Modules) {
    for (const GlobalData &G : M->Globals) {
      // 8-byte align each global.
      DAddr = (DAddr + 7) & ~uint64_t(7);
      Data.push_back(DataEntry{&G, DAddr});
      bool Inserted = SymToData.emplace(G.Name, DAddr).second;
      if (!Inserted) {
        std::fprintf(stderr, "linker error: duplicate global '%s'\n",
                     Prog.symbolName(G.Name).c_str());
        std::abort();
      }
      DAddr += G.Bytes.size();
    }
  }
  DataBytes = DAddr - DataBaseAddr;
}
