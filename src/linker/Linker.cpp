//===- linker/Linker.cpp - Module merging & image layout ------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"

#include "linker/LayoutStrategy.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace mco;

Module &mco::linkProgram(Program &Prog, DataLayoutMode Mode) {
  auto Linked = std::make_unique<Module>();
  Linked->Name = "linked";

  for (auto &M : Prog.Modules) {
    for (MachineFunction &MF : M->Functions)
      Linked->Functions.push_back(std::move(MF));
    for (GlobalData &G : M->Globals)
      Linked->Globals.push_back(std::move(G));
  }

  if (Mode == DataLayoutMode::Interleaved) {
    // Stock llvm-link behaviour modeled as an affinity-destroying shuffle:
    // order globals by a hash of their symbol id, mixing modules together.
    std::sort(Linked->Globals.begin(), Linked->Globals.end(),
              [](const GlobalData &A, const GlobalData &B) {
                auto H = [](uint32_t X) {
                  X ^= X >> 16;
                  X *= 0x7FEB352Du;
                  X ^= X >> 15;
                  X *= 0x846CA68Bu;
                  X ^= X >> 16;
                  return X;
                };
                uint32_t HA = H(A.Name), HB = H(B.Name);
                if (HA != HB)
                  return HA < HB;
                return A.Name < B.Name;
              });
  } else {
    // Preserve module affinity: stable order by origin module.
    std::stable_sort(Linked->Globals.begin(), Linked->Globals.end(),
                     [](const GlobalData &A, const GlobalData &B) {
                       return A.OriginModule < B.OriginModule;
                     });
  }

  Prog.Modules.clear();
  Prog.Modules.push_back(std::move(Linked));
  return *Prog.Modules.back();
}

BinaryImage::BinaryImage(const Program &Prog) {
  if (Status S = init(Prog, nullptr); !S.ok()) {
    // The aborting constructors serve trusted Programs (synthesized
    // corpora, already-validated fixtures) where a link failure is a bug.
    // Anything built from external bytes must use create(), which
    // propagates init's Status instead.
    std::fprintf(stderr, "linker error: %s\n", S.message().c_str());
    std::abort();
  }
}

BinaryImage::BinaryImage(const Program &Prog, const LayoutPlan &Plan) {
  if (Status S = init(Prog, &Plan); !S.ok()) {
    // Same contract as above: trusted callers only; use create() for
    // input-derived Programs.
    std::fprintf(stderr, "linker error: %s\n", S.message().c_str());
    std::abort();
  }
}

Expected<BinaryImage> BinaryImage::create(const Program &Prog,
                                          const LayoutPlan *Plan) {
  BinaryImage Img;
  if (Status S = Img.init(Prog, Plan); !S.ok())
    return S;
  return Img;
}

Status BinaryImage::init(const Program &Prog, const LayoutPlan *Plan) {
  // Flat module-order function enumeration — the index space LayoutPlan
  // orders refer to.
  std::vector<const MachineFunction *> Flat;
  for (const auto &M : Prog.Modules)
    for (const MachineFunction &MF : M->Functions)
      Flat.push_back(&MF);

  // Resolve the layout order. An empty plan order means module order.
  std::vector<uint32_t> Order;
  if (Plan && !Plan->Order.empty()) {
    Order = Plan->Order;
    if (Order.size() != Flat.size())
      return MCO_ERROR("layout plan orders " + std::to_string(Order.size()) +
                       " function(s), program has " +
                       std::to_string(Flat.size()));
    std::vector<uint8_t> Seen(Flat.size(), 0);
    for (uint32_t Idx : Order) {
      if (Idx >= Flat.size())
        return MCO_ERROR("layout plan index " + std::to_string(Idx) +
                         " out of range");
      if (Seen[Idx]++)
        return MCO_ERROR("layout plan repeats function index " +
                         std::to_string(Idx));
    }
  } else {
    Order.resize(Flat.size());
    for (uint32_t I = 0; I < Flat.size(); ++I)
      Order[I] = I;
  }

  uint64_t Addr = TextBase;
  for (uint32_t FlatIdx : Order) {
    const MachineFunction &MF = *Flat[FlatIdx];
    FuncLayout FL;
    FL.MF = &MF;
    FL.Addr = Addr;
    for (const MachineBasicBlock &MBB : MF.Blocks) {
      FL.BlockAddrs.push_back(Addr);
      for (const MachineInstr &MI : MBB.Instrs) {
        FlatInstrs.push_back(&MI);
        FlatFuncIdx.push_back(static_cast<uint32_t>(Funcs.size()));
        Addr += InstrBytes;
      }
    }
    bool Inserted =
        SymToFunc.emplace(MF.Name, static_cast<uint32_t>(Funcs.size()))
            .second;
    if (!Inserted)
      return MCO_ERROR("duplicate symbol '" + Prog.symbolName(MF.Name) + "'");
    Funcs.push_back(std::move(FL));
  }
  CodeBytes = Addr - TextBase;

  // Data begins at the next page boundary.
  DataBaseAddr = (Addr + PageSize - 1) & ~(PageSize - 1);
  uint64_t DAddr = DataBaseAddr;
  for (const auto &M : Prog.Modules) {
    for (const GlobalData &G : M->Globals) {
      // 8-byte align each global.
      DAddr = (DAddr + 7) & ~uint64_t(7);
      Data.push_back(DataEntry{&G, DAddr});
      bool Inserted = SymToData.emplace(G.Name, DAddr).second;
      if (!Inserted)
        return MCO_ERROR("duplicate global '" + Prog.symbolName(G.Name) +
                         "'");
      DAddr += G.Bytes.size();
    }
  }
  DataBytes = DAddr - DataBaseAddr;
  return Status::success();
}
