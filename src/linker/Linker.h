//===- linker/Linker.h - Module merging & image layout ----------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two linker roles from the paper's pipelines:
///
///  1. `linkProgram` is the llvm-link analogue: it merges every module of a
///     Program into one module. Its data-layout mode reproduces the paper's
///     Section VI production incident — the default merge interleaves
///     globals from different modules, destroying programmer-driven data
///     affinity and causing page faults; `PreserveModuleOrder` is the
///     paper's upstreamed fix.
///
///  2. `buildImage` is the system-linker analogue: it assigns every
///     function and global a virtual address and resolves symbols. It
///     deliberately does *not* deduplicate identical outlined clones from
///     different modules (real linkers keep local symbols), which is why
///     the per-module pipeline loses to whole-program outlining (Fig. 12).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_LINKER_LINKER_H
#define MCO_LINKER_LINKER_H

#include "mir/Program.h"
#include "support/Error.h"
#include "support/PageSize.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace mco {

struct LayoutPlan;

/// How `linkProgram` orders global data from different modules.
enum class DataLayoutMode : uint8_t {
  /// Globals from the same origin module stay adjacent (the paper's fix).
  PreserveModuleOrder,
  /// Globals are interleaved across modules (hash order) — models stock
  /// llvm-link's affinity-destroying behaviour.
  Interleaved,
};

/// Merges all modules of \p Prog into a single module named "linked".
/// The old modules are destroyed; \returns the merged module.
Module &linkProgram(Program &Prog,
                    DataLayoutMode Mode = DataLayoutMode::PreserveModuleOrder);

/// A fully laid out binary: every instruction has a 4-byte-aligned virtual
/// address; every global has a data address.
class BinaryImage {
public:
  /// Default bases; data follows text at the next page boundary.
  static constexpr uint64_t TextBase = 0x100000000ull;
  static constexpr uint64_t PageSize = TextPageBytes16K; // see PageSize.h

  /// Lays out every function of every module of \p Prog (in module order)
  /// and every global (in each module's stored order — run linkProgram
  /// first to apply a data-layout policy program-wide).
  ///
  /// \p Prog must outlive the image. Aborts on duplicate function symbols;
  /// use create() for the Status-returning path.
  explicit BinaryImage(const Program &Prog);

  /// Like the ctor, but applies \p Plan's function order (a LayoutStrategy
  /// product; see LayoutStrategy.h). Aborts on layout errors.
  BinaryImage(const Program &Prog, const LayoutPlan &Plan);

  /// The recoverable construction path: \returns the laid-out image, or a
  /// Status on duplicate function/global symbols or a malformed plan
  /// (Order not a permutation of the program's functions). \p Plan may be
  /// null (module order).
  static Expected<BinaryImage> create(const Program &Prog,
                                      const LayoutPlan *Plan = nullptr);

  /// \returns the address of function \p Sym, or 0 if undefined (e.g. a
  /// runtime builtin the simulator provides).
  uint64_t functionAddr(uint32_t Sym) const {
    auto It = SymToFunc.find(Sym);
    return It == SymToFunc.end() ? 0 : Funcs[It->second].Addr;
  }

  /// \returns the data address of global \p Sym, or 0 if undefined.
  uint64_t globalAddr(uint32_t Sym) const {
    auto It = SymToData.find(Sym);
    return It == SymToData.end() ? 0 : It->second;
  }

  /// \returns the instruction at \p Addr, or nullptr when \p Addr is not a
  /// laid-out instruction address.
  const MachineInstr *instrAt(uint64_t Addr) const {
    if (Addr < TextBase)
      return nullptr;
    uint64_t Idx = (Addr - TextBase) / InstrBytes;
    return Idx < FlatInstrs.size() ? FlatInstrs[Idx] : nullptr;
  }

  /// \returns the index (into funcs()) of the function containing \p Addr.
  uint32_t functionIndexAt(uint64_t Addr) const {
    uint64_t Idx = (Addr - TextBase) / InstrBytes;
    return FlatFuncIdx[Idx];
  }

  /// \returns the address of block \p Block of the function at index
  /// \p FuncIdx.
  uint64_t blockAddr(uint32_t FuncIdx, uint32_t Block) const {
    return Funcs[FuncIdx].BlockAddrs[Block];
  }

  struct FuncLayout {
    const MachineFunction *MF;
    uint64_t Addr;
    std::vector<uint64_t> BlockAddrs;
  };
  const std::vector<FuncLayout> &funcs() const { return Funcs; }

  struct DataEntry {
    const GlobalData *G;
    uint64_t Addr;
  };
  const std::vector<DataEntry> &dataEntries() const { return Data; }

  uint64_t codeSize() const { return CodeBytes; }
  uint64_t dataSize() const { return DataBytes; }
  uint64_t dataBase() const { return DataBaseAddr; }
  uint64_t dataEnd() const { return DataBaseAddr + DataBytes; }

  /// The whole-binary size: code + data + a fixed resource overhead used
  /// when the benches report "binary size" versus "code size".
  uint64_t binarySize(uint64_t ResourceBytes = 0) const {
    return CodeBytes + DataBytes + ResourceBytes;
  }

private:
  /// Expected<BinaryImage> needs an empty image to default-construct;
  /// create() fills it via init().
  BinaryImage() = default;
  friend class Expected<BinaryImage>;

  /// The one layout routine behind every construction path.
  Status init(const Program &Prog, const LayoutPlan *Plan);

  std::vector<FuncLayout> Funcs;
  std::unordered_map<uint32_t, uint32_t> SymToFunc;
  std::vector<DataEntry> Data;
  std::unordered_map<uint32_t, uint64_t> SymToData;
  std::vector<const MachineInstr *> FlatInstrs;
  std::vector<uint32_t> FlatFuncIdx;
  uint64_t CodeBytes = 0;
  uint64_t DataBytes = 0;
  uint64_t DataBaseAddr = 0;
};

} // namespace mco

#endif // MCO_LINKER_LINKER_H
