//===- linker/StitchLayout.cpp - stitch layout strategy -------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The `stitch` strategy: Codestitcher-style layout ("Codestitcher:
/// Inter-Procedural Basic Block Layout Optimization", arxiv 1810.00905),
/// at function granularity — the unit this linker places.
///
/// The fleet traces' aggregated caller->callee counts form a weighted
/// dynamic call graph. Edges are visited hottest-first; an edge merges the
/// caller's chain tail onto the callee's chain head (Pettis–Hansen chain
/// merging) — but only while the combined chain still fits the 16 KiB
/// page budget, Codestitcher's key constraint: a hot caller/callee pair
/// is only worth co-locating if both ends land on the *same* page.
/// Finished chains are emitted hottest-density-first, then a warm tier —
/// traced functions whose merges all failed, in first-execution order —
/// so every function startup touches stays compact, and untraced cold
/// functions keep module order at the end.
///
/// Deterministic: edges sort by (weight desc, caller, callee), all
/// tie-breaks are index-based, no RNG.
///
//===----------------------------------------------------------------------===//

#include "linker/LayoutStrategy.h"

#include "mir/Program.h"

#include <algorithm>
#include <map>

using namespace mco;
using namespace mco::layout_detail;

namespace {

class StitchLayout : public LayoutStrategy {
public:
  std::string name() const override { return "stitch"; }

  Expected<LayoutPlan> plan(const Program &Prog,
                            const TraceProfile &Traces) const override;
};

struct Chain {
  std::vector<uint32_t> Flats; ///< Member functions, layout order.
  uint64_t Bytes = 0;
  uint64_t Heat = 0; ///< Total weight of edges merged into the chain.
  bool Live = true;
};

Expected<LayoutPlan> StitchLayout::plan(const Program &Prog,
                                        const TraceProfile &Traces) const {
  LayoutPlan P;
  P.Strategy = name();
  P.Data = dataLayout();

  const FunctionTable FT = flattenFunctions(Prog);
  const size_t N = FT.size();
  const std::vector<uint32_t> Map = mapProfileToProgram(Prog, FT, Traces);

  // Aggregate call weights across devices onto flat-index edges.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> EdgeW;
  for (const DeviceTrace &D : Traces.Devices)
    for (const TraceCallEdge &E : D.Calls) {
      if (E.Caller >= Map.size() || E.Callee >= Map.size())
        continue;
      const uint32_t A = Map[E.Caller], B = Map[E.Callee];
      if (A == UINT32_MAX || B == UINT32_MAX || A == B)
        continue;
      EdgeW[{A, B}] += E.Count;
    }
  struct Edge {
    uint64_t W;
    uint32_t Src, Dst;
  };
  std::vector<Edge> Edges;
  Edges.reserve(EdgeW.size());
  for (const auto &[Key, W] : EdgeW)
    Edges.push_back({W, Key.first, Key.second});
  std::sort(Edges.begin(), Edges.end(), [](const Edge &A, const Edge &B) {
    if (A.W != B.W)
      return A.W > B.W;
    if (A.Src != B.Src)
      return A.Src < B.Src;
    return A.Dst < B.Dst;
  });
  // A function is traced if the fleet saw it execute: it appears in some
  // device's entry stream or on a call edge. FirstSeen orders the warm
  // tier by first execution across the concatenated device streams
  // (edge-only functions — called past the entry cap — rank after all
  // entered ones, by flat index).
  std::vector<uint32_t> FirstSeen(N, UINT32_MAX);
  uint32_t SeenRank = 0;
  for (const DeviceTrace &D : Traces.Devices)
    for (uint32_t Id : D.Entries) {
      if (Id >= Map.size())
        continue;
      const uint32_t F = Map[Id];
      if (F != UINT32_MAX && FirstSeen[F] == UINT32_MAX)
        FirstSeen[F] = SeenRank++;
    }
  std::vector<uint8_t> Traced(N, 0);
  for (uint32_t F = 0; F < N; ++F)
    Traced[F] = FirstSeen[F] != UINT32_MAX;
  for (const Edge &E : Edges) {
    Traced[E.Src] = 1;
    Traced[E.Dst] = 1;
  }
  P.FunctionsTraced = 0;
  for (uint8_t S : Traced)
    P.FunctionsTraced += S;

  // Every function starts as its own chain.
  std::vector<Chain> Chains(N);
  std::vector<uint32_t> ChainOf(N);
  for (uint32_t F = 0; F < N; ++F) {
    Chains[F].Flats = {F};
    Chains[F].Bytes = FT.Bytes[F];
    ChainOf[F] = F;
  }

  // Hottest-first chain merging under the page budget. The caller must be
  // its chain's tail and the callee its chain's head, so the merged
  // layout actually places the pair adjacently (fall-through locality).
  for (const Edge &E : Edges) {
    const uint32_t CA = ChainOf[E.Src], CB = ChainOf[E.Dst];
    if (CA == CB)
      continue;
    Chain &A = Chains[CA];
    Chain &B = Chains[CB];
    if (A.Flats.back() != E.Src || B.Flats.front() != E.Dst)
      continue;
    if (A.Bytes + B.Bytes > PageBudgetBytes)
      continue; // Codestitcher's page budget: never grow past one page.
    for (uint32_t F : B.Flats) {
      ChainOf[F] = CA;
      A.Flats.push_back(F);
    }
    A.Bytes += B.Bytes;
    A.Heat += B.Heat + E.W;
    B.Live = false;
    B.Flats.clear();
  }

  // Hot chains first, by heat density (heat per byte) so a short hot pair
  // outranks a long lukewarm chain. A heat-0 live chain is a never-merged
  // singleton: traced ones form the warm tier (first-execution order) so
  // startup code stays compact even when every merge missed its budget or
  // adjacency; untraced ones are cold and keep module order.
  std::vector<uint32_t> Hot, Warm, Cold;
  for (uint32_t C = 0; C < N; ++C) {
    if (!Chains[C].Live)
      continue;
    if (Chains[C].Heat > 0)
      Hot.push_back(C);
    else if (Traced[Chains[C].Flats.front()])
      Warm.push_back(C);
    else
      Cold.push_back(C);
  }
  std::sort(Hot.begin(), Hot.end(), [&](uint32_t A, uint32_t B) {
    const double DA = double(Chains[A].Heat) / double(Chains[A].Bytes + 1);
    const double DB = double(Chains[B].Heat) / double(Chains[B].Bytes + 1);
    if (DA != DB)
      return DA > DB;
    return Chains[A].Flats.front() < Chains[B].Flats.front();
  });
  std::sort(Warm.begin(), Warm.end(), [&](uint32_t A, uint32_t B) {
    const uint32_t FA = Chains[A].Flats.front(), FB = Chains[B].Flats.front();
    if (FirstSeen[FA] != FirstSeen[FB])
      return FirstSeen[FA] < FirstSeen[FB];
    return FA < FB;
  });

  P.Order.reserve(N);
  for (uint32_t C : Hot) {
    P.ChainSizes.push_back(Chains[C].Bytes);
    for (uint32_t F : Chains[C].Flats)
      P.Order.push_back(F);
  }
  for (uint32_t C : Warm)
    for (uint32_t F : Chains[C].Flats)
      P.Order.push_back(F);
  for (uint32_t C : Cold)
    for (uint32_t F : Chains[C].Flats)
      P.Order.push_back(F);

  P.EstimatedTextFaults = estimateTextFaults(Prog, P.Order, Traces);
  return P;
}

} // namespace

namespace mco {
std::unique_ptr<LayoutStrategy> makeStitchLayout() {
  return std::unique_ptr<LayoutStrategy>(new StitchLayout());
}
} // namespace mco
