//===- support/FormatValidator.cpp - Structural invariant checks ----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FormatValidator.h"

using namespace mco;

Status validate::indexInRange(uint64_t Idx, uint64_t Bound,
                              const char *What) {
  if (Idx < Bound)
    return Status::success();
  return MCO_CORRUPT(std::string(What) + " index " + std::to_string(Idx) +
                     " out of range (bound " + std::to_string(Bound) + ")");
}

Status validate::countWithin(uint64_t Count, uint64_t Cap, const char *What) {
  if (Count <= Cap)
    return Status::success();
  return MCO_CORRUPT(std::string(What) + " count " + std::to_string(Count) +
                     " exceeds cap " + std::to_string(Cap));
}

bool validate::isHexToken(const std::string &S, size_t Digits) {
  if (S.size() != Digits)
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
          (C >= 'A' && C <= 'F')))
      return false;
  return true;
}

bool validate::isRequestIdToken(const std::string &S) {
  if (S.empty() || S.size() > 128)
    return false;
  for (char C : S)
    if (!((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-'))
      return false;
  return true;
}
