//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace mco;

std::atomic<bool> mco::fault_detail::Armed{false};

FaultInjection &FaultInjection::instance() {
  static FaultInjection Registry;
  return Registry;
}

const std::vector<std::string> &FaultInjection::knownSites() {
  static const std::vector<std::string> Sites = {
      FaultOutlinerRewriteCorrupt, FaultMapperHashCollide,
      FaultPipelineModuleFail,     FaultThreadPoolTaskThrow,
      FaultCacheEntryCorrupt,      FaultCacheLockStale,
      FaultPipelineModuleHang,     FaultCacheWriterContend,
      FaultDaemonConnDrop,         FaultDaemonWorkerCrash,
      FaultDaemonQueueOverflow,    FaultDaemonRequestHang,
      FaultRpcFrameGarble,         FaultArtifactSealGarble,
      FaultObjfileRelocGarble};
  return Sites;
}

namespace {

uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xCBF29CE484222325ull;
  for (char C : S)
    H = (H ^ static_cast<uint8_t>(C)) * 0x100000001B3ull;
  return H;
}

/// Splits \p S on \p Sep, trimming ASCII spaces.
std::vector<std::string> splitTrim(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  auto Flush = [&] {
    size_t B = Cur.find_first_not_of(" \t");
    if (B == std::string::npos) {
      Cur.clear();
      return;
    }
    size_t E = Cur.find_last_not_of(" \t");
    Out.push_back(Cur.substr(B, E - B + 1));
    Cur.clear();
  };
  for (char C : S) {
    if (C == Sep)
      Flush();
    else
      Cur += C;
  }
  Flush();
  return Out;
}

} // namespace

void FaultInjection::clear() {
  fault_detail::Armed.store(false, std::memory_order_relaxed);
  Specs.clear();
  CurrentRound.store(0, std::memory_order_relaxed);
}

Status FaultInjection::configure(const std::string &SpecList) {
  clear();
  std::vector<std::unique_ptr<SiteSpec>> Parsed;
  for (const std::string &Entry : splitTrim(SpecList, ';')) {
    auto Spec = std::make_unique<SiteSpec>();
    // site[@round][:rate[,seed]]
    std::string Head = Entry;
    size_t Colon = Head.find(':');
    if (Colon != std::string::npos) {
      std::string Tail = Head.substr(Colon + 1);
      Head = Head.substr(0, Colon);
      size_t Comma = Tail.find(',');
      std::string RateTok =
          Comma == std::string::npos ? Tail : Tail.substr(0, Comma);
      char *End = nullptr;
      Spec->Rate = std::strtod(RateTok.c_str(), &End);
      if (End == RateTok.c_str() || Spec->Rate < 0.0 || Spec->Rate > 1.0)
        return MCO_ERROR("fault spec '" + Entry +
                         "': rate must be a number in [0, 1]");
      if (Comma != std::string::npos)
        Spec->Seed = std::strtoull(Tail.c_str() + Comma + 1, nullptr, 10);
    }
    size_t At = Head.find('@');
    if (At != std::string::npos) {
      Spec->Round =
          static_cast<unsigned>(std::strtoul(Head.c_str() + At + 1,
                                             nullptr, 10));
      Head = Head.substr(0, At);
    }
    Spec->Site = Head;
    const std::vector<std::string> &Known = knownSites();
    if (std::find(Known.begin(), Known.end(), Spec->Site) == Known.end()) {
      std::string Msg = "unknown fault site '" + Spec->Site + "'; known:";
      for (const std::string &K : Known)
        Msg += " " + K;
      return MCO_ERROR(Msg);
    }
    Parsed.push_back(std::move(Spec));
  }
  Specs = std::move(Parsed);
  if (!Specs.empty())
    fault_detail::Armed.store(true, std::memory_order_relaxed);
  return Status::success();
}

bool FaultInjection::shouldFireSlow(const char *Site) {
  bool Fires = false;
  for (const std::unique_ptr<SiteSpec> &Spec : Specs) {
    if (Spec->Site != Site)
      continue;
    if (Spec->Round != 0 &&
        Spec->Round != CurrentRound.load(std::memory_order_relaxed))
      continue;
    uint64_t Draw = Spec->Draws.fetch_add(1, std::memory_order_relaxed);
    // Decision depends only on (seed, site, draw index), never on timing.
    uint64_t H = splitmix64(Spec->Seed ^ fnv1a(Spec->Site) ^
                            (Draw * 0x100000001B3ull));
    double U = double(H >> 11) * (1.0 / 9007199254740992.0);
    if (U < Spec->Rate) {
      Spec->Fired.fetch_add(1, std::memory_order_relaxed);
      Fires = true;
    }
  }
  return Fires;
}

uint64_t FaultInjection::firedCount(const std::string &Site) const {
  uint64_t N = 0;
  for (const std::unique_ptr<SiteSpec> &Spec : Specs)
    if (Spec->Site == Site)
      N += Spec->Fired.load(std::memory_order_relaxed);
  return N;
}

std::string FaultInjection::contentAffectingConfig() const {
  std::string Out;
  for (const std::unique_ptr<SiteSpec> &Spec : Specs) {
    // cache.* sites only perturb the artifact store around the build;
    // daemon.* sites only perturb the service's transport and scheduling;
    // rpc.*/artifact.*/objfile.* sites corrupt frames, sealed envelopes,
    // and persisted containers, all of which is detected and degraded
    // around the build. None changes the bytes a build produces.
    if (Spec->Site.rfind("cache.", 0) == 0 ||
        Spec->Site.rfind("daemon.", 0) == 0 ||
        Spec->Site.rfind("rpc.", 0) == 0 ||
        Spec->Site.rfind("artifact.", 0) == 0 ||
        Spec->Site.rfind("objfile.", 0) == 0)
      continue;
    if (!Out.empty())
      Out += ';';
    Out += Spec->Site;
    if (Spec->Round != 0)
      Out += "@" + std::to_string(Spec->Round);
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), ":%.17g,%llu", Spec->Rate,
                  static_cast<unsigned long long>(Spec->Seed));
    Out += Buf;
  }
  return Out;
}

std::vector<FaultInjection::SiteReport> FaultInjection::report() const {
  std::vector<SiteReport> Out;
  for (const std::unique_ptr<SiteSpec> &Spec : Specs)
    Out.push_back({Spec->Site, Spec->Draws.load(std::memory_order_relaxed),
                   Spec->Fired.load(std::memory_order_relaxed)});
  return Out;
}
