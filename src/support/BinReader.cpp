//===- support/BinReader.cpp - Bounds-checked input cursor ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BinReader.h"

#include <cstring>

using namespace mco;

Status BinReader::status(const std::string &What) const {
  if (!Failed)
    return Status::success();
  return MCO_CORRUPT(What + ": " + Err + " at byte " +
                     std::to_string(FailPos));
}

void BinReader::poison(const std::string &Why) {
  if (!Failed) {
    Failed = true;
    FailPos = Pos;
    Err = Why;
  }
}

uint64_t BinReader::fixed(unsigned N) {
  uint8_t Buf[8] = {};
  take(Buf, N);
  uint64_t V = 0;
  for (unsigned I = 0; I < N; ++I)
    V |= static_cast<uint64_t>(Buf[I]) << (8 * I);
  return V;
}

void BinReader::take(void *Out, size_t N) {
  if (Failed || N > B.size() - Pos) {
    poison("truncated payload");
    std::memset(Out, 0, N);
    return;
  }
  std::memcpy(Out, B.data() + Pos, N);
  Pos += N;
}

std::string BinReader::str() {
  uint32_t Len = u32();
  if (Failed)
    return {};
  if (Len > remaining()) {
    poison("string length " + std::to_string(Len) + " exceeds payload");
    return {};
  }
  std::string S = B.substr(Pos, Len);
  Pos += Len;
  return S;
}

std::string BinReader::bytes(size_t N) {
  if (Failed)
    return {};
  if (N > remaining()) {
    poison("truncated payload");
    return {};
  }
  std::string S = B.substr(Pos, N);
  Pos += N;
  return S;
}

bool BinReader::literal(const char *Bytes, size_t N) {
  if (Failed)
    return false;
  if (N > remaining() || std::memcmp(B.data() + Pos, Bytes, N) != 0) {
    poison("bad magic");
    return false;
  }
  Pos += N;
  return true;
}

bool BinReader::plausibleCount(uint64_t Count, size_t MinBytes,
                               const char *What) {
  if (Failed)
    return false;
  // Division, not multiplication: Count * MinBytes can wrap.
  if (MinBytes != 0 && Count > remaining() / MinBytes) {
    poison(std::string("implausible ") + What + " count " +
           std::to_string(Count));
    return false;
  }
  return true;
}

uint64_t BinReader::decimalU64(const char *What) {
  if (Failed)
    return 0;
  size_t Start = Pos;
  uint64_t V = 0;
  while (Pos < B.size() && B[Pos] >= '0' && B[Pos] <= '9') {
    if (Pos - Start >= 19) {
      Pos = Start;
      poison(std::string(What) + ": number too large");
      return 0;
    }
    V = V * 10 + uint64_t(B[Pos] - '0');
    ++Pos;
  }
  if (Pos == Start) {
    poison(std::string(What) + ": expected decimal number");
    return 0;
  }
  return V;
}

uint32_t BinReader::hexU32(unsigned Digits, const char *What) {
  if (Failed)
    return 0;
  if (Digits > remaining()) {
    poison(std::string(What) + ": truncated hex field");
    return 0;
  }
  uint32_t V = 0;
  for (unsigned I = 0; I < Digits; ++I) {
    char C = B[Pos + I];
    uint32_t D;
    if (C >= '0' && C <= '9')
      D = uint32_t(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = uint32_t(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      D = uint32_t(C - 'A' + 10);
    else {
      poison(std::string(What) + ": expected hex digit");
      return 0;
    }
    V = (V << 4) | D;
  }
  Pos += Digits;
  return V;
}

bool BinReader::skipChar(char C, const char *What) {
  if (Failed)
    return false;
  if (Pos >= B.size() || B[Pos] != C) {
    poison(std::string(What) + ": expected '" + std::string(1, C) + "'");
    return false;
  }
  ++Pos;
  return true;
}

std::string BinReader::rest() {
  if (Failed)
    return {};
  std::string S = B.substr(Pos);
  Pos = B.size();
  return S;
}
