//===- support/ExitCodes.h - Tool exit-code discipline ---------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one exit-code convention every mco tool follows (sysexits-style),
/// so fleet tooling can distinguish "bad artifact" from "bug" from "retry
/// later" without parsing stderr:
///
///   0   success (including served-but-degraded builds)
///   64  usage: bad command line
///   65  corrupt or invalid input (artifact, journal, profile, MIR)
///   70  internal error (a bug, or a broken environment)
///   75  transient failure: retrying the same command may succeed
///
/// main() should funnel every failure through exitCodeFor(Status) rather
/// than picking numbers locally.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_EXITCODES_H
#define MCO_SUPPORT_EXITCODES_H

#include "support/Error.h"

namespace mco {

inline constexpr int ExitOk = 0;
inline constexpr int ExitUsage = 64;
inline constexpr int ExitCorruptInput = 65;
inline constexpr int ExitInternal = 70;
inline constexpr int ExitTransient = 75;

/// Maps a failed Status to the tool exit code for its class (ExitOk when
/// the Status is ok).
inline int exitCodeFor(const Status &S) {
  if (S.ok())
    return ExitOk;
  switch (S.code()) {
  case StatusCode::Usage:
    return ExitUsage;
  case StatusCode::CorruptInput:
    return ExitCorruptInput;
  case StatusCode::Transient:
    return ExitTransient;
  case StatusCode::Internal:
    break;
  }
  return ExitInternal;
}

} // namespace mco

#endif // MCO_SUPPORT_EXITCODES_H
