//===- support/ThreadPool.h - Deterministic bulk-parallel helper -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool running index-based bulk jobs. This is the
/// parallel engine behind the outliner's per-function liveness and
/// per-plan candidate classification, the per-module pipeline fan-out, and
/// corpus synthesis.
///
/// Determinism contract: parallelFor(N, Fn) invokes Fn(I) exactly once for
/// every I in [0, N). Which lane runs which index is unspecified, so Fn
/// must only write state owned by index I (e.g. slot I of a pre-sized
/// vector). Under that rule the observable result is identical to the
/// serial loop `for (I = 0; I < N; ++I) Fn(I);` at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_THREADPOOL_H
#define MCO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mco {

class ThreadPool {
public:
  /// Creates a pool with max(1, Threads) lanes. The calling thread is one
  /// lane; Threads <= 1 spawns no workers and every job runs inline.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of lanes, counting the calling thread.
  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs Fn(I) for every I in [0, N) across the pool's lanes and blocks
  /// until all invocations finish. Rethrows the first exception thrown by
  /// any invocation (remaining indices still run). Not reentrant: must not
  /// be called from inside a job running on the same pool.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// The machine's hardware concurrency (>= 1).
  static unsigned hardwareThreads();

private:
  void workerLoop();
  void runChunks(const std::function<void(size_t)> &Fn, size_t N);

  std::vector<std::thread> Workers;
  std::mutex Mtx;
  std::condition_variable JobCV;  ///< Workers wait here for a new job.
  std::condition_variable DoneCV; ///< The caller waits here for completion.
  // Current job; published under Mtx, read by workers under Mtx.
  const std::function<void(size_t)> *JobFn = nullptr;
  size_t JobN = 0;
  uint64_t Generation = 0;
  unsigned ActiveWorkers = 0; ///< Workers currently inside runChunks.
  bool JobOpen = false; ///< True while the published job may be joined.
  bool Stopping = false;
  std::atomic<size_t> NextIdx{0};
  std::atomic<size_t> Pending{0};
  std::mutex ErrMtx;
  std::exception_ptr FirstError;
};

/// Maps [0, N) through \p Make into an index-ordered vector in parallel.
/// Make(I) must be independent of every other index.
template <typename T, typename MakeFn>
std::vector<T> parallelMap(ThreadPool &Pool, size_t N, MakeFn Make) {
  std::vector<T> Out(N);
  Pool.parallelFor(N, [&](size_t I) { Out[I] = Make(I); });
  return Out;
}

} // namespace mco

#endif // MCO_SUPPORT_THREADPOOL_H
