//===- support/Checksum.h - Streaming digests & sealed artifacts -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming CRC32C (Castagnoli) and FNV-1a digests, plus the sealed
/// artifact envelope every on-disk intermediate is wrapped in. A build that
/// is killed mid-write, a torn rename, or a bit flip on disk must never
/// feed corrupt bytes back into a later build; the seal makes corruption a
/// detected cache miss instead of a wrong binary.
///
/// Sealed format (the payload is opaque bytes):
///
///   MCOA1 <payload-size-decimal> <crc32c-8hex>\n<payload>
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_CHECKSUM_H
#define MCO_SUPPORT_CHECKSUM_H

#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace mco {

/// Streaming CRC32C (polynomial 0x1EDC6F41, reflected). Software
/// table-driven; of("123456789") == 0xE3069283.
class Crc32c {
public:
  void update(const void *Data, size_t Len);
  void update(const std::string &S) { update(S.data(), S.size()); }

  /// The digest of everything fed so far (the object stays usable).
  uint32_t value() const { return ~State; }

  static uint32_t of(const std::string &S) {
    Crc32c C;
    C.update(S);
    return C.value();
  }

private:
  uint32_t State = 0xFFFFFFFFu;
};

/// Streaming 64-bit FNV-1a. Used for cache keys, where we want a cheap
/// digest whose seed can be varied to get independent hashes.
class Fnv64 {
public:
  explicit Fnv64(uint64_t Seed = 0xCBF29CE484222325ull) : H(Seed) {}

  void update(const void *Data, size_t Len) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < Len; ++I)
      H = (H ^ P[I]) * 0x100000001B3ull;
  }
  void update(const std::string &S) { update(S.data(), S.size()); }
  void update(uint64_t V) { update(&V, sizeof(V)); }

  uint64_t value() const { return H; }

private:
  uint64_t H;
};

/// First bytes of every sealed artifact.
inline constexpr const char *ArtifactSealMagic = "MCOA1";

/// Wraps \p Payload in the sealed envelope (header + CRC32C).
std::string sealArtifact(const std::string &Payload);

/// Verifies and strips the envelope. Fails on a bad magic, a truncated
/// file, a size mismatch, or a checksum mismatch — every way a kill -9 or
/// disk corruption can mangle an artifact.
Expected<std::string> unsealArtifact(const std::string &Sealed);

} // namespace mco

#endif // MCO_SUPPORT_CHECKSUM_H
