//===- support/Random.h - Deterministic random utilities -------*- C++ -*-===//
//
// Part of the mco project: a reproduction of "An Experience with Code-Size
// Optimization for Production iOS Mobile Applications" (CGO 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used throughout the corpus
/// synthesizer and the performance simulator. All experiments are seeded so
/// every table and figure in EXPERIMENTS.md is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_RANDOM_H
#define MCO_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mco {

/// A small, fast, deterministic PRNG (xorshift128+).
///
/// We intentionally avoid std::mt19937 so that streams are stable across
/// standard library implementations; figure regeneration must not depend on
/// the host toolchain.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    auto Next = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    State0 = Next();
    State1 = Next();
    if (State0 == 0 && State1 == 0)
      State1 = 1;
  }

  /// \returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t S1 = State0;
    const uint64_t S0 = State1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return State1 + S0;
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// \returns a uniform integer in the closed range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBounded(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// \returns a sample from a standard normal via Box-Muller.
  double nextGaussian() {
    double U1 = nextDouble();
    double U2 = nextDouble();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

  /// \returns a log-normally distributed sample exp(N(Mu, Sigma)).
  ///
  /// Used to model per-sample latency jitter in the production span
  /// simulation (Section VII-B of the paper).
  double nextLogNormal(double Mu, double Sigma) {
    return std::exp(Mu + Sigma * nextGaussian());
  }

private:
  uint64_t State0;
  uint64_t State1;
};

/// Samples ranks 1..N from a Zipf distribution p(r) ~ 1 / r^S.
///
/// The paper observes (Fig. 5) that machine-code pattern repetition
/// frequencies follow a power law; the corpus synthesizer uses this sampler
/// to reproduce that structure.
class ZipfSampler {
public:
  ZipfSampler(unsigned N, double S) : Cdf(N) {
    assert(N > 0 && "Zipf sampler needs at least one rank");
    double Sum = 0;
    for (unsigned I = 0; I < N; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), S);
      Cdf[I] = Sum;
    }
    for (unsigned I = 0; I < N; ++I)
      Cdf[I] /= Sum;
  }

  /// \returns a rank in [1, N], rank 1 being the most frequent.
  unsigned sample(Rng &R) const {
    double U = R.nextDouble();
    // Binary search the CDF.
    unsigned Lo = 0, Hi = static_cast<unsigned>(Cdf.size());
    while (Lo < Hi) {
      unsigned Mid = Lo + (Hi - Lo) / 2;
      if (Cdf[Mid] < U)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo + 1;
  }

  unsigned numRanks() const { return static_cast<unsigned>(Cdf.size()); }

private:
  std::vector<double> Cdf;
};

} // namespace mco

#endif // MCO_SUPPORT_RANDOM_H
