//===- support/Statistics.cpp - Regression & summary statistics ----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace mco;

LinearFit mco::fitLinear(const std::vector<double> &Xs,
                         const std::vector<double> &Ys) {
  assert(Xs.size() == Ys.size() && "mismatched series");
  assert(Xs.size() >= 2 && "need at least two points");
  const double N = static_cast<double>(Xs.size());

  double SumX = 0, SumY = 0, SumXX = 0, SumXY = 0;
  for (size_t I = 0, E = Xs.size(); I != E; ++I) {
    SumX += Xs[I];
    SumY += Ys[I];
    SumXX += Xs[I] * Xs[I];
    SumXY += Xs[I] * Ys[I];
  }

  const double Denom = N * SumXX - SumX * SumX;
  LinearFit Fit;
  if (Denom == 0) {
    // Vertical data; report a flat line through the mean.
    Fit.Slope = 0;
    Fit.Intercept = SumY / N;
    Fit.R2 = 0;
    return Fit;
  }
  Fit.Slope = (N * SumXY - SumX * SumY) / Denom;
  Fit.Intercept = (SumY - Fit.Slope * SumX) / N;

  const double MeanY = SumY / N;
  double SSRes = 0, SSTot = 0;
  for (size_t I = 0, E = Xs.size(); I != E; ++I) {
    const double Pred = Fit.eval(Xs[I]);
    SSRes += (Ys[I] - Pred) * (Ys[I] - Pred);
    SSTot += (Ys[I] - MeanY) * (Ys[I] - MeanY);
  }
  Fit.R2 = SSTot == 0 ? 1.0 : 1.0 - SSRes / SSTot;
  return Fit;
}

double PowerLawFit::eval(double X) const { return A * std::pow(X, B); }

PowerLawFit mco::fitPowerLaw(const std::vector<double> &Xs,
                             const std::vector<double> &Ys) {
  assert(Xs.size() == Ys.size() && "mismatched series");
  std::vector<double> LogX, LogY;
  LogX.reserve(Xs.size());
  LogY.reserve(Ys.size());
  for (size_t I = 0, E = Xs.size(); I != E; ++I) {
    assert(Xs[I] > 0 && Ys[I] > 0 && "power-law fit needs positive data");
    LogX.push_back(std::log(Xs[I]));
    LogY.push_back(std::log(Ys[I]));
  }
  LinearFit LF = fitLinear(LogX, LogY);
  PowerLawFit Fit;
  Fit.A = std::exp(LF.Intercept);
  Fit.B = LF.Slope;
  Fit.R2 = LF.R2;
  return Fit;
}

double mco::percentile(std::vector<double> Values, double P) {
  assert(!Values.empty() && "percentile of empty set");
  assert(P >= 0 && P <= 100 && "percentile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  const double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(Rank);
  const size_t Hi = std::min(Lo + 1, Values.size() - 1);
  const double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double mco::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty set");
  double SumLog = 0;
  for (double V : Values) {
    assert(V > 0 && "geometric mean needs positive values");
    SumLog += std::log(V);
  }
  return std::exp(SumLog / static_cast<double>(Values.size()));
}

double mco::mean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of empty set");
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

uint64_t IntHistogram::totalCount() const {
  uint64_t Total = 0;
  for (const auto &KV : Bins)
    Total += KV.second;
  return Total;
}

uint64_t IntHistogram::maxValue() const {
  return Bins.empty() ? 0 : Bins.rbegin()->first;
}
