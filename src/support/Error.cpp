//===- support/Error.cpp - Status/Expected error propagation --------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace mco;

std::string Status::render() const {
  if (ok())
    return "";
  if (!D->File)
    return D->Message;
  return std::string(D->File) + ":" + std::to_string(D->Line) + ": " +
         D->Message;
}
