//===- support/BinReader.h - Bounds-checked input cursor -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one bounds-checked cursor every persisted-format reader is built
/// on: MCOA1 sealed envelopes, MCOM cache entries, `.mcoj` journal lines,
/// `mco-rpc-v1` frames, and `mco-traces-v1` profiles. Untrusted bytes come
/// from disk and sockets; a truncated file, an inflated length field, or a
/// hostile count must become a Status with a byte offset, never an
/// out-of-bounds read, a huge allocation, or an abort.
///
/// Failure model (inherited from the original MCOM decoder): the first
/// failed read *poisons* the cursor and records why + where; subsequent
/// reads return zeros/empties without advancing, so decode loops check
/// fail() at structural boundaries instead of after every field. status()
/// renders the poison as a CorruptInput Status: "<what>: <why> at byte
/// <offset>".
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_BINREADER_H
#define MCO_SUPPORT_BINREADER_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace mco {

class BinReader {
public:
  /// \p Bytes must outlive the reader (it holds a reference).
  explicit BinReader(const std::string &Bytes) : B(Bytes) {}

  bool fail() const { return Failed; }
  const std::string &error() const { return Err; }
  /// Byte offset of the cursor; when poisoned, the offset at which the
  /// failing read started.
  size_t offset() const { return Failed ? FailPos : Pos; }
  size_t remaining() const { return Failed ? 0 : B.size() - Pos; }
  bool atEnd() const { return !Failed && Pos == B.size(); }

  /// The poison as a CorruptInput Status ("<what>: <why> at byte <off>"),
  /// or ok when nothing failed.
  Status status(const std::string &What) const;

  // Little-endian fixed-width reads. A read past the end poisons and
  // returns zero.
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1);
    return V;
  }
  uint16_t u16() { return static_cast<uint16_t>(fixed(2)); }
  uint32_t u32() { return static_cast<uint32_t>(fixed(4)); }
  uint64_t u64() { return fixed(8); }
  int64_t i64() { return static_cast<int64_t>(fixed(8)); }

  /// u32 length-prefixed string. A length past the end of the payload (an
  /// inflated length field) poisons instead of allocating.
  std::string str();

  /// Exactly the next \p N raw bytes.
  std::string bytes(size_t N);

  /// Consumes \p Bytes or poisons ("bad magic").
  bool literal(const char *Bytes, size_t N);

  /// Guards a count field read from the input: each of \p Count elements
  /// occupies at least \p MinBytes, so a count the remaining payload
  /// cannot hold is structural damage (and would otherwise drive a huge
  /// reserve()).
  bool plausibleCount(uint64_t Count, size_t MinBytes, const char *What);

  // Text helpers, for the formats with human-readable headers (the MCOA1
  // envelope line, `.mcoj` CRC prefixes).

  /// Consumes ASCII decimal digits (at most 19: every valid value fits,
  /// and anything longer is damage, not data). Poisons when the cursor is
  /// not on a digit or the value overflows.
  uint64_t decimalU64(const char *What);

  /// Consumes exactly \p Digits hex digits.
  uint32_t hexU32(unsigned Digits, const char *What);

  /// Consumes one expected character.
  bool skipChar(char C, const char *What);

  /// All bytes from the cursor to the end (empty once poisoned).
  std::string rest();

  /// Marks the reader failed at the current offset. Only the first poison
  /// sticks.
  void poison(const std::string &Why);

private:
  uint64_t fixed(unsigned N);
  void take(void *Out, size_t N);

  const std::string &B;
  size_t Pos = 0;
  size_t FailPos = 0;
  bool Failed = false;
  std::string Err;
};

} // namespace mco

#endif // MCO_SUPPORT_BINREADER_H
