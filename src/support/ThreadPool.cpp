//===- support/ThreadPool.cpp - Deterministic bulk-parallel helper --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

using namespace mco;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned Lanes = Threads == 0 ? 1 : Threads;
  Workers.reserve(Lanes - 1);
  for (unsigned I = 1; I < Lanes; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mtx);
    Stopping = true;
  }
  JobCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunks(const std::function<void(size_t)> &Fn, size_t N) {
  for (;;) {
    size_t I = NextIdx.fetch_add(1, std::memory_order_relaxed);
    if (I >= N)
      return;
    try {
      faultSiteCheck(FaultThreadPoolTaskThrow);
      Fn(I);
    } catch (...) {
      std::lock_guard<std::mutex> L(ErrMtx);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index done; wake the caller (lock so the wakeup can't race
      // past the caller's predicate check).
      std::lock_guard<std::mutex> L(Mtx);
      DoneCV.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t N = 0;
    {
      std::unique_lock<std::mutex> L(Mtx);
      // JobOpen gates late wakeups: once the caller has observed
      // completion and returned, its job (and the function object it
      // points to) must not be joined anymore.
      JobCV.wait(L, [&] {
        return Stopping || (JobOpen && Generation != SeenGeneration);
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      Fn = JobFn;
      N = JobN;
      ++ActiveWorkers;
    }
    runChunks(*Fn, N);
    {
      std::lock_guard<std::mutex> L(Mtx);
      --ActiveWorkers;
    }
    DoneCV.notify_all();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Workers.empty() || N == 1) {
    // Inline path: exceptions propagate directly.
    for (size_t I = 0; I < N; ++I) {
      faultSiteCheck(FaultThreadPoolTaskThrow);
      Fn(I);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> L(Mtx);
    JobFn = &Fn;
    JobN = N;
    NextIdx.store(0, std::memory_order_relaxed);
    Pending.store(N, std::memory_order_relaxed);
    ++Generation;
    JobOpen = true;
  }
  JobCV.notify_all();
  runChunks(Fn, N);
  {
    // Wait for all indices to complete AND all joined workers to leave,
    // then close the job so late wakeups can't touch a stale Fn before
    // the next parallelFor republishes.
    std::unique_lock<std::mutex> L(Mtx);
    DoneCV.wait(L, [&] {
      return Pending.load(std::memory_order_acquire) == 0 &&
             ActiveWorkers == 0;
    });
    JobOpen = false;
  }
  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> L(ErrMtx);
    E = FirstError;
    FirstError = nullptr;
  }
  if (E)
    std::rethrow_exception(E);
}
