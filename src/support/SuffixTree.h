//===- support/SuffixTree.h - Ukkonen suffix tree ---------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear-time generalized suffix tree over sequences of unsigned
/// integers, built with Ukkonen's online algorithm. This is one of the two
/// candidate discovery engines of the machine outliner (the other is the
/// enhanced suffix array in support/SuffixArray.h): the instruction mapper
/// turns the whole program into one integer string (with per-block unique
/// terminators) and every repeated substring of legal instructions is a
/// potential outlining pattern.
///
/// The design follows LLVM's llvm/Support/SuffixTree.h. In particular,
/// repeated substrings are reported per *internal node*, and, by default,
/// the occurrence list contains only the node's direct leaf children — the
/// same approximation stock LLVM uses. The \c CollectLeafDescendants mode
/// reports all leaf descendants instead (more occurrences per pattern, at
/// higher cost); the two modes are compared in the ablation bench.
///
/// Storage is cache-conscious: nodes live in one contiguous arena
/// (\c std::vector with capacity reserved to Ukkonen's 2n bound), child
/// edges are looked up through a single open-addressing (node, symbol)
/// table during construction, and construction finishes by freezing the
/// edges into a flat CSR layout sorted by edge symbol, so every traversal
/// is a deterministic sweep over contiguous memory — no per-node
/// red-black trees, no pointer chasing through a deque.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_SUFFIXTREE_H
#define MCO_SUPPORT_SUFFIXTREE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mco {

/// A repeated substring of the mapped string: its length and every start
/// index at which it occurs.
struct RepeatedSubstring {
  unsigned Length = 0;
  std::vector<unsigned> StartIndices;
};

/// Streaming sink for repeated-substring enumeration. Called once per
/// pattern with (Length, Starts, NumStarts); Starts points into
/// engine-owned scratch storage that is only valid for the duration of the
/// call, and the indices are sorted ascending. Streaming lets the consumer
/// build its own compact representation (the outliner stages candidates
/// into one flat arena) without the engine materializing a
/// std::vector<RepeatedSubstring> — one heap vector per pattern — first.
using RepeatedSubstringSink =
    std::function<void(unsigned Length, const unsigned *Starts,
                       size_t NumStarts)>;

/// Suffix tree over a string of unsigned integers.
class SuffixTree {
public:
  /// Sentinel for "no index".
  static constexpr unsigned EmptyIdx = static_cast<unsigned>(-1);

  /// Builds the tree for \p Str.
  ///
  /// \param Str the subject string. The caller must keep it alive for the
  ///        lifetime of the tree. For complete occurrence reporting the
  ///        final element should be unique in the string (the instruction
  ///        mapper guarantees this with per-block terminators).
  /// \param CollectLeafDescendants if true, repeated substrings report all
  ///        leaf descendants of each internal node rather than only its
  ///        direct leaf children.
  explicit SuffixTree(const std::vector<unsigned> &Str,
                      bool CollectLeafDescendants = false);

  SuffixTree(const SuffixTree &) = delete;
  SuffixTree &operator=(const SuffixTree &) = delete;

  /// Enumerates every repeated substring with length >= \p MinLength that
  /// occurs at least \p MinOccurrences times.
  ///
  /// In leaf-descendant mode, substrings longer than \p MaxLength fall back
  /// to direct-leaf-children reporting to bound the output size.
  std::vector<RepeatedSubstring>
  repeatedSubstrings(unsigned MinLength = 2, unsigned MinOccurrences = 2,
                     unsigned MaxLength = 4096) const;

  /// Streaming variant of repeatedSubstrings: invokes \p Sink once per
  /// reported pattern instead of materializing the result vector. The
  /// enumeration order is deterministic (pre-order over the tree with
  /// children in ascending edge-symbol order).
  void forEachRepeatedSubstring(unsigned MinLength, unsigned MinOccurrences,
                                unsigned MaxLength,
                                const RepeatedSubstringSink &Sink) const;

  /// \returns the number of nodes (diagnostics/tests).
  size_t numNodes() const { return Nodes.size(); }

  /// \returns the bytes held by the tree's node arena, edge CSR, and
  /// auxiliary arrays (bench/diagnostics; capacity, not size, because the
  /// arena is the peak allocation).
  size_t memoryBytes() const;

  /// \returns true if \p Pattern occurs in the subject string (test helper;
  /// walks from the root in O(|Pattern| * log maxdegree)).
  bool contains(const std::vector<unsigned> &Pattern) const;

private:
  struct Node {
    /// First index of the edge label into Str; EmptyIdx for the root.
    unsigned StartIdx = EmptyIdx;
    /// Last index (inclusive) of the edge label. For leaves this is fixed
    /// up to the end of the string when construction finishes.
    unsigned EndIdx = EmptyIdx;
    /// Suffix link (Ukkonen); index of target node or EmptyIdx.
    unsigned Link = EmptyIdx;
    /// For leaves: start index of the suffix this leaf represents.
    unsigned SuffixIdx = EmptyIdx;
    /// Length of the string spelled from the root to this node.
    unsigned ConcatLen = 0;
    /// In leaf-descendant mode: the range [LeftLeaf, RightLeaf) into
    /// LeafOrder holding this subtree's leaves.
    unsigned LeftLeaf = EmptyIdx;
    unsigned RightLeaf = EmptyIdx;
    /// CSR range [FirstEdge, FirstEdge + NumEdges) into Edges, filled by
    /// freezeEdges(); edges are sorted by symbol.
    uint32_t FirstEdge = 0;
    uint32_t NumEdges = 0;
    bool IsLeaf = false;

    bool isRoot() const { return StartIdx == EmptyIdx; }
  };

  /// One frozen child edge: the first symbol of the edge label and the
  /// child node index.
  struct Edge {
    unsigned Symbol;
    unsigned Child;
  };

  /// Open-addressing (parent node, first symbol) -> child map used only
  /// while Ukkonen's algorithm runs; frozen into the CSR afterwards.
  /// Pre-sized to the 2n edge bound so construction never rehashes.
  class EdgeTable {
  public:
    void init(size_t ExpectedEdges);
    /// \returns the child for (Parent, Symbol), or EmptyIdx.
    unsigned find(unsigned Parent, unsigned Symbol) const;
    /// Inserts or overwrites (Parent, Symbol) -> Child.
    void set(unsigned Parent, unsigned Symbol, unsigned Child);
    size_t size() const { return Count; }
    size_t memoryBytes() const {
      return Keys.capacity() * sizeof(uint64_t) +
             Vals.capacity() * sizeof(unsigned);
    }
    /// Iterates every (parent, symbol, child) entry in table order
    /// (unordered; callers sort).
    template <typename Fn> void forEach(Fn F) const {
      for (size_t I = 0; I != Keys.size(); ++I)
        if (Keys[I] != EmptyKey)
          F(static_cast<unsigned>(Keys[I] >> 32),
            static_cast<unsigned>(Keys[I]), Vals[I]);
    }

  private:
    static constexpr uint64_t EmptyKey = ~0ull;
    size_t slotFor(uint64_t Key) const;

    std::vector<uint64_t> Keys;
    std::vector<unsigned> Vals;
    size_t Mask = 0;
    size_t Count = 0;
  };

  /// Active point for Ukkonen's algorithm.
  struct ActiveState {
    unsigned Node = 0;
    unsigned Idx = EmptyIdx;
    unsigned Len = 0;
  };

  unsigned edgeSize(const Node &N) const;
  unsigned makeLeaf(unsigned Parent, unsigned StartIdx, unsigned Edge);
  unsigned makeInternal(unsigned Parent, unsigned StartIdx, unsigned EndIdx,
                        unsigned Edge);
  unsigned extend(unsigned EndIdx, unsigned SuffixesToAdd);
  /// Moves the construction-time edge table into the per-node CSR, sorted
  /// by symbol within each node.
  void freezeEdges();
  void setSuffixIndicesAndLeafRanges();
  /// Binary search for \p Symbol among \p N's frozen edges.
  unsigned findChild(const Node &N, unsigned Symbol) const;

  const std::vector<unsigned> &Str;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  EdgeTable Building;
  unsigned Root = 0;
  unsigned LeafEndIdx = EmptyIdx;
  ActiveState Active;
  bool LeafDescendantsMode;
  /// Leaves' suffix indices in Euler-tour order; used by leaf-descendant
  /// reporting.
  std::vector<unsigned> LeafOrder;
};

} // namespace mco

#endif // MCO_SUPPORT_SUFFIXTREE_H
