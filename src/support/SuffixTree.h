//===- support/SuffixTree.h - Ukkonen suffix tree ---------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear-time generalized suffix tree over sequences of unsigned
/// integers, built with Ukkonen's online algorithm. This is the candidate
/// discovery engine of the machine outliner: the instruction mapper turns
/// the whole program into one integer string (with per-block unique
/// terminators) and every repeated substring of legal instructions is a
/// potential outlining pattern.
///
/// The design follows LLVM's llvm/Support/SuffixTree.h. In particular,
/// repeated substrings are reported per *internal node*, and, by default,
/// the occurrence list contains only the node's direct leaf children — the
/// same approximation stock LLVM uses. The \c CollectLeafDescendants mode
/// reports all leaf descendants instead (more occurrences per pattern, at
/// higher cost); the two modes are compared in the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_SUFFIXTREE_H
#define MCO_SUPPORT_SUFFIXTREE_H

#include <cstddef>
#include <deque>
#include <map>
#include <vector>

namespace mco {

/// A repeated substring of the mapped string: its length and every start
/// index at which it occurs.
struct RepeatedSubstring {
  unsigned Length = 0;
  std::vector<unsigned> StartIndices;
};

/// Suffix tree over a string of unsigned integers.
class SuffixTree {
public:
  /// Sentinel for "no index".
  static constexpr unsigned EmptyIdx = static_cast<unsigned>(-1);

  /// Builds the tree for \p Str.
  ///
  /// \param Str the subject string. The caller must keep it alive for the
  ///        lifetime of the tree. For complete occurrence reporting the
  ///        final element should be unique in the string (the instruction
  ///        mapper guarantees this with per-block terminators).
  /// \param CollectLeafDescendants if true, repeated substrings report all
  ///        leaf descendants of each internal node rather than only its
  ///        direct leaf children.
  explicit SuffixTree(const std::vector<unsigned> &Str,
                      bool CollectLeafDescendants = false);

  SuffixTree(const SuffixTree &) = delete;
  SuffixTree &operator=(const SuffixTree &) = delete;

  /// Enumerates every repeated substring with length >= \p MinLength that
  /// occurs at least \p MinOccurrences times.
  ///
  /// In leaf-descendant mode, substrings longer than \p MaxLength fall back
  /// to direct-leaf-children reporting to bound the output size.
  std::vector<RepeatedSubstring>
  repeatedSubstrings(unsigned MinLength = 2, unsigned MinOccurrences = 2,
                     unsigned MaxLength = 4096) const;

  /// \returns the number of nodes (diagnostics/tests).
  size_t numNodes() const { return Nodes.size(); }

  /// \returns true if \p Pattern occurs in the subject string (test helper;
  /// walks from the root in O(|Pattern|)).
  bool contains(const std::vector<unsigned> &Pattern) const;

private:
  struct Node {
    /// Outgoing edges, keyed by the first element of the edge label. An
    /// ordered map so every traversal is deterministic by construction —
    /// no per-node key collection and sort at query time.
    std::map<unsigned, unsigned> Children;
    /// First index of the edge label into Str; EmptyIdx for the root.
    unsigned StartIdx = EmptyIdx;
    /// Last index (inclusive) of the edge label. For leaves this is fixed
    /// up to the end of the string when construction finishes.
    unsigned EndIdx = EmptyIdx;
    /// Suffix link (Ukkonen); index of target node or EmptyIdx.
    unsigned Link = EmptyIdx;
    /// For leaves: start index of the suffix this leaf represents.
    unsigned SuffixIdx = EmptyIdx;
    /// Length of the string spelled from the root to this node.
    unsigned ConcatLen = 0;
    /// In leaf-descendant mode: the range [LeftLeaf, RightLeaf) into
    /// LeafOrder holding this subtree's leaves.
    unsigned LeftLeaf = EmptyIdx;
    unsigned RightLeaf = EmptyIdx;
    bool IsLeaf = false;

    bool isRoot() const { return StartIdx == EmptyIdx; }
  };

  /// Active point for Ukkonen's algorithm.
  struct ActiveState {
    unsigned Node = 0;
    unsigned Idx = EmptyIdx;
    unsigned Len = 0;
  };

  unsigned edgeSize(const Node &N) const;
  unsigned makeLeaf(unsigned Parent, unsigned StartIdx, unsigned Edge);
  unsigned makeInternal(unsigned Parent, unsigned StartIdx, unsigned EndIdx,
                        unsigned Edge);
  unsigned extend(unsigned EndIdx, unsigned SuffixesToAdd);
  void setSuffixIndicesAndLeafRanges();

  const std::vector<unsigned> &Str;
  std::deque<Node> Nodes;
  unsigned Root = 0;
  unsigned LeafEndIdx = EmptyIdx;
  ActiveState Active;
  bool LeafDescendantsMode;
  /// Leaves in Euler-tour order; used by leaf-descendant reporting.
  std::vector<unsigned> LeafOrder;
};

} // namespace mco

#endif // MCO_SUPPORT_SUFFIXTREE_H
