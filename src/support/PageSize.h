//===- support/PageSize.h - The shared 16 KiB text-page size ---*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16 KiB page size iOS maps text with — the unit the paper measures
/// app size in and every page-granular model in this tree shares:
/// BinaryImage::PageSize, the first-touch TextPageModel, the i-TLB and
/// data-page cost models, the Codestitcher chain budget, mco-traces-v1
/// page indices, and the `mco-size --pages` accounting. One definition so
/// the models can't drift apart: a layout packed under one page size must
/// be charged faults under the same one.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_PAGESIZE_H
#define MCO_SUPPORT_PAGESIZE_H

#include <cstdint>

namespace mco {

/// 16 KiB, as on iOS (arm64 Darwin maps 16 KiB pages).
inline constexpr uint64_t TextPageBytes16K = 16384;

} // namespace mco

#endif // MCO_SUPPORT_PAGESIZE_H
