//===- support/FileAtomics.h - Crash-safe file primitives -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The filesystem discipline the crash-safe build layer is built on:
///
///  - atomicWriteFile: write-to-temp + fsync + rename + directory fsync, so
///    a reader never observes a half-written file — after a kill -9 the
///    path holds either the old bytes or the new bytes, never a mix.
///  - FileLock: an owner-pid lock file with stale-lock recovery. A build
///    that dies holding the lock leaves a lock file whose pid is dead; the
///    next build detects that and steals the lock instead of deadlocking.
///
/// Stale-lock takeover is multi-client safe: the stale file is consumed
/// with an atomic rename (two racing stealers cannot both consume the same
/// incarnation), a steal that turns out to have grabbed a *live* lock is
/// rolled back, and a successful acquire re-reads the lock file to verify
/// it still records this process before reporting success. Without these
/// three steps, two clients that both observed the same dead pid could
/// unlink each other's freshly created locks and both "hold" the lock.
///
/// The `cache.lock.stale` fault site plants a dead-owner lock file right
/// before an acquire, exercising the recovery path deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_FILEATOMICS_H
#define MCO_SUPPORT_FILEATOMICS_H

#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <string>

namespace mco {

/// mkdir -p. Ok when the directory already exists.
Status ensureDir(const std::string &Path);

bool fileExists(const std::string &Path);

/// Reads the whole file as bytes.
Expected<std::string> readFileBytes(const std::string &Path);

/// Atomically replaces \p Path with \p Bytes: writes a unique temp file in
/// the same directory, fsyncs it, renames it over \p Path, and fsyncs the
/// directory. Concurrent writers to the same path are safe (last rename
/// wins; every observable state is a complete file).
Status atomicWriteFile(const std::string &Path, const std::string &Bytes);

/// Removes \p Path; ok when it does not exist.
Status removeFileIfExists(const std::string &Path);

/// An exclusive lock file carrying its owner's pid. acquire() is
/// non-blocking: it fails when a *live* process holds the lock, and
/// recovers (unlinks and retries) when the recorded owner is dead.
class FileLock {
public:
  FileLock() = default;
  ~FileLock() { release(); }

  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

  /// Tries to take the lock at \p Path. Fails with a "held by pid N"
  /// Status when a live owner holds it.
  Status acquire(const std::string &Path);

  /// Releases (unlinks) the lock if held. Safe to call when not held.
  void release();

  bool held() const { return Held; }

  /// Dead-owner lock files this lock recovered from during acquire().
  uint64_t staleLocksRecovered() const { return StaleRecovered; }

  /// \returns true when \p Pid names a live process.
  static bool processAlive(long Pid);

  /// Test-only: invoked after acquire() observes a dead owner and before
  /// it consumes the stale file, so tests can interleave a racing client
  /// in exactly the window the takeover protocol must survive.
  std::function<void()> TestHookBeforeSteal;

private:
  std::string LockPath;
  bool Held = false;
  uint64_t StaleRecovered = 0;
};

} // namespace mco

#endif // MCO_SUPPORT_FILEATOMICS_H
