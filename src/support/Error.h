//===- support/Error.h - Status/Expected error propagation -----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error types for the parser -> pipeline -> tool
/// path. A Status is either ok or carries a message plus the source
/// location that raised it; Expected<T> is a value-or-Status. Neither uses
/// exceptions, so library code can hand failures up to main() instead of
/// calling std::exit mid-pipeline (the paper's production constraint: an
/// optimizer bug must cost a candidate, never the build).
///
/// Raise errors with MCO_ERROR("message") so the diagnostic records
/// file:line of the raise site.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_ERROR_H
#define MCO_SUPPORT_ERROR_H

#include <cassert>
#include <memory>
#include <string>
#include <utility>

namespace mco {

/// Coarse error class carried by a Status so tools can map failures to
/// distinct exit codes (sysexits-style) and fleet tooling can tell "bad
/// artifact" from "bug" without parsing messages.
enum class StatusCode : uint8_t {
  Internal = 0,     ///< Unclassified / internal error (exit 70).
  Usage = 1,        ///< Bad command line or API misuse (exit 64).
  CorruptInput = 2, ///< Malformed, truncated, or invalid input (exit 65).
  Transient = 3,    ///< Retryable: busy peer, lost connection (exit 75).
};

/// Success, or an error message with its raise location. Cheap to copy
/// (one shared_ptr); the ok state allocates nothing.
class Status {
public:
  /// Default-constructed Status is ok.
  Status() = default;

  static Status success() { return Status(); }

  /// \p File should be a string with static storage duration (__FILE__).
  static Status error(std::string Message, const char *File = nullptr,
                      int Line = 0,
                      StatusCode Code = StatusCode::Internal) {
    Status S;
    S.D = std::make_shared<const Payload>(
        Payload{std::move(Message), File, Line, Code});
    return S;
  }

  bool ok() const { return D == nullptr; }
  explicit operator bool() const { return ok(); }

  /// The raw message. Only valid when !ok().
  const std::string &message() const {
    assert(D && "message() on an ok Status");
    return D->Message;
  }

  /// "file:line: message" (or just the message when no location was
  /// recorded); "" when ok.
  std::string render() const;

  const char *file() const { return D ? D->File : nullptr; }
  int line() const { return D ? D->Line : 0; }

  /// The error class; Internal when ok (callers should check ok() first).
  StatusCode code() const { return D ? D->Code : StatusCode::Internal; }

private:
  struct Payload {
    std::string Message;
    const char *File;
    int Line;
    StatusCode Code = StatusCode::Internal;
  };
  std::shared_ptr<const Payload> D;
};

/// Raises a Status error annotated with the current source location.
#define MCO_ERROR(MsgExpr) ::mco::Status::error((MsgExpr), __FILE__, __LINE__)

/// Raises a classified Status error (see StatusCode).
#define MCO_ERROR_CODE(Code, MsgExpr)                                         \
  ::mco::Status::error((MsgExpr), __FILE__, __LINE__, (Code))

/// Raises a corrupt/invalid-input error: the bytes, not the program, are
/// at fault. Tools map this to exit 65.
#define MCO_CORRUPT(MsgExpr)                                                  \
  ::mco::Status::error((MsgExpr), __FILE__, __LINE__,                         \
                       ::mco::StatusCode::CorruptInput)

/// Raises a retryable error (lost connection, busy peer). Tools map this
/// to exit 75.
#define MCO_TRANSIENT(MsgExpr)                                                \
  ::mco::Status::error((MsgExpr), __FILE__, __LINE__,                         \
                       ::mco::StatusCode::Transient)

/// A value of type T or the Status explaining why there is none.
template <typename T> class Expected {
public:
  Expected(T Value) : Val(std::move(Value)), HasVal(true) {}
  Expected(Status Err) : Err(std::move(Err)) {
    assert(!this->Err.ok() && "Expected built from an ok Status");
  }

  bool ok() const { return HasVal; }
  explicit operator bool() const { return HasVal; }

  T &get() {
    assert(HasVal && "get() on a failed Expected");
    return Val;
  }
  const T &get() const {
    assert(HasVal && "get() on a failed Expected");
    return Val;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The error. ok (empty) when a value is present.
  const Status &status() const { return Err; }

private:
  T Val{};
  Status Err;
  bool HasVal = false;
};

} // namespace mco

#endif // MCO_SUPPORT_ERROR_H
