//===- support/SuffixArray.cpp - SA-IS enhanced suffix array -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SuffixArray.h"

#include <algorithm>
#include <cassert>

using namespace mco;

namespace {

constexpr uint32_t Empty = ~0u;

/// SA-IS core (Nong/Zhang/Chan). Sorts the n suffixes of S into SA.
/// Preconditions: n >= 1, values of S in [0, K), and S[n-1] == 0 is the
/// unique minimum (the sentinel). Both the top-level call and the
/// recursion on the reduced string establish this invariant.
void saisCore(const uint32_t *S, uint32_t *SA, uint32_t N, uint32_t K) {
  if (N == 1) {
    SA[0] = 0;
    return;
  }

  // Type pass: IsS[i] = suffix i is S-type (smaller than suffix i+1).
  std::vector<bool> IsS(N);
  IsS[N - 1] = true;
  for (uint32_t I = N - 1; I-- > 0;)
    IsS[I] = S[I] < S[I + 1] || (S[I] == S[I + 1] && IsS[I + 1]);
  auto IsLMS = [&](uint32_t I) { return I > 0 && IsS[I] && !IsS[I - 1]; };

  std::vector<uint32_t> Bkt(K);
  auto BucketEnds = [&] {
    std::fill(Bkt.begin(), Bkt.end(), 0);
    for (uint32_t I = 0; I < N; ++I)
      ++Bkt[S[I]];
    uint32_t Sum = 0;
    for (uint32_t C = 0; C < K; ++C) {
      Sum += Bkt[C];
      Bkt[C] = Sum; // One past the end of bucket C.
    }
  };
  auto BucketStarts = [&] {
    std::fill(Bkt.begin(), Bkt.end(), 0);
    for (uint32_t I = 0; I < N; ++I)
      ++Bkt[S[I]];
    uint32_t Sum = 0;
    for (uint32_t C = 0; C < K; ++C) {
      uint32_t Cnt = Bkt[C];
      Bkt[C] = Sum; // Start of bucket C.
      Sum += Cnt;
    }
  };

  // Induced sort: given LMS suffixes placed in their buckets, derive the
  // order of all L-type then all S-type suffixes in two linear sweeps.
  auto Induce = [&] {
    BucketStarts();
    for (uint32_t I = 0; I < N; ++I) {
      uint32_t J = SA[I];
      if (J != Empty && J != 0 && !IsS[J - 1])
        SA[Bkt[S[J - 1]]++] = J - 1;
    }
    BucketEnds();
    for (uint32_t I = N; I-- > 0;) {
      uint32_t J = SA[I];
      if (J != Empty && J != 0 && IsS[J - 1])
        SA[--Bkt[S[J - 1]]] = J - 1;
    }
  };

  // Stage 1: approximate — place LMS suffixes at their bucket ends in
  // string order, induce. Afterwards the LMS suffixes appear in sorted
  // LMS-*substring* order.
  std::fill(SA, SA + N, Empty);
  BucketEnds();
  for (uint32_t I = 1; I < N; ++I)
    if (IsLMS(I))
      SA[--Bkt[S[I]]] = I;
  Induce();

  // Compact the LMS suffixes (now sorted by LMS substring) to the front.
  uint32_t NumLMS = 0;
  for (uint32_t I = 0; I < N; ++I)
    if (SA[I] != Empty && IsLMS(SA[I]))
      SA[NumLMS++] = SA[I];

  // Name the LMS substrings in the upper half of SA (LMS positions are at
  // least 2 apart, so Pos/2 slots don't collide; NumLMS <= N/2 leaves
  // room).
  std::fill(SA + NumLMS, SA + N, Empty);
  auto LmsSubstringsEqual = [&](uint32_t P, uint32_t Q) {
    // Compares the substrings spanning [P, next LMS] and [Q, next LMS].
    // The sentinel's uniqueness guarantees the scan terminates in-range.
    if (S[P] != S[Q])
      return false;
    for (uint32_t D = 1;; ++D) {
      if (S[P + D] != S[Q + D])
        return false;
      bool LP = IsLMS(P + D), LQ = IsLMS(Q + D);
      if (LP != LQ)
        return false;
      if (LP)
        return true;
    }
  };
  uint32_t NumNames = 0;
  uint32_t Prev = Empty;
  for (uint32_t I = 0; I < NumLMS; ++I) {
    uint32_t Pos = SA[I];
    if (Prev == Empty || !LmsSubstringsEqual(Prev, Pos))
      ++NumNames;
    SA[NumLMS + (Pos >> 1)] = NumNames - 1;
    Prev = Pos;
  }

  // Reduced string: the LMS substring names in string order, packed into
  // the tail of SA.
  uint32_t *S1 = SA + N - NumLMS;
  for (uint32_t I = N, J = N; I-- > NumLMS;)
    if (SA[I] != Empty)
      SA[--J] = SA[I];

  if (NumNames < NumLMS) {
    // Names collide: sort the reduced string recursively. Its last
    // element is the sentinel's LMS substring — the unique minimum name 0
    // — so the precondition holds.
    saisCore(S1, SA, NumLMS, NumNames);
  } else {
    // All names unique: the reduced suffix array is the inverse.
    for (uint32_t I = 0; I < NumLMS; ++I)
      SA[S1[I]] = I;
  }

  // Translate reduced indices back to LMS positions (ascending scan
  // rebuilds the position list in the S1 slots the recursion no longer
  // needs).
  {
    uint32_t J = 0;
    for (uint32_t I = 1; I < N; ++I)
      if (IsLMS(I))
        S1[J++] = I;
    for (uint32_t I = 0; I < NumLMS; ++I)
      SA[I] = S1[SA[I]];
  }

  // Stage 2: exact — place the now fully sorted LMS suffixes at their
  // bucket ends and induce the final order.
  std::fill(SA + NumLMS, SA + N, Empty);
  BucketEnds();
  for (uint32_t I = NumLMS; I-- > 0;) {
    uint32_t J = SA[I];
    SA[I] = Empty;
    SA[--Bkt[S[J]]] = J;
  }
  Induce();
}

} // namespace

std::vector<uint32_t>
mco::buildSuffixArray(const std::vector<unsigned> &Str) {
  const size_t N = Str.size();
  if (N == 0)
    return {};

  // Rank-compress the alphabet so bucket arrays stay dense: instruction
  // ids are sparse 32-bit values (illegal markers count down from
  // 0xFFFFFFF0), but only |distinct| buckets are ever occupied. Rank 0 is
  // reserved for the appended sentinel, making it the unique minimum
  // SA-IS requires.
  std::vector<unsigned> Sorted(Str);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());

  std::vector<uint32_t> S(N + 1);
  for (size_t I = 0; I < N; ++I)
    S[I] = static_cast<uint32_t>(std::lower_bound(Sorted.begin(),
                                                  Sorted.end(), Str[I]) -
                                 Sorted.begin()) +
           1;
  S[N] = 0;

  std::vector<uint32_t> SA(N + 1);
  saisCore(S.data(), SA.data(), static_cast<uint32_t>(N + 1),
           static_cast<uint32_t>(Sorted.size() + 1));
  assert(SA[0] == N && "sentinel suffix must sort first");

  // Drop the sentinel suffix.
  return std::vector<uint32_t>(SA.begin() + 1, SA.end());
}

std::vector<uint32_t>
mco::buildLcpArray(const std::vector<unsigned> &Str,
                   const std::vector<uint32_t> &SA) {
  const size_t N = SA.size();
  std::vector<uint32_t> LCP(N, 0);
  if (N == 0)
    return LCP;
  // Kasai: walk suffixes in string order; the lcp with the SA-predecessor
  // shrinks by at most one per step, so the total extension work is O(n).
  std::vector<uint32_t> Rank(N);
  for (uint32_t K = 0; K < N; ++K)
    Rank[SA[K]] = K;
  uint32_t H = 0;
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t R = Rank[I];
    if (R > 0) {
      uint32_t J = SA[R - 1];
      while (I + H < N && J + H < N && Str[I + H] == Str[J + H])
        ++H;
      LCP[R] = H;
      if (H > 0)
        --H;
    } else {
      H = 0;
    }
  }
  return LCP;
}

SuffixArray::SuffixArray(const std::vector<unsigned> &Str,
                         bool CollectLeafDescendants)
    : Str(Str), LeafDescendantsMode(CollectLeafDescendants) {
  SA = buildSuffixArray(Str);
  LCP = buildLcpArray(Str, SA);
  // Construction peak (estimate): the retained SA + LCP, the
  // rank-compressed copy + working SA inside buildSuffixArray, the type
  // bits, and the Kasai rank array. Recursion levels shrink geometrically
  // and are ignored.
  PeakBytes = (SA.capacity() + LCP.capacity()) * sizeof(uint32_t) +
              (Str.size() + 1) * 2 * sizeof(uint32_t) + Str.size() / 8 +
              Str.size() * sizeof(uint32_t);
}

void SuffixArray::forEachRepeatedSubstring(
    unsigned MinLength, unsigned MinOccurrences, unsigned MaxLength,
    const RepeatedSubstringSink &Sink) const {
  const uint32_t M = static_cast<uint32_t>(SA.size());
  if (M < 2)
    return;
  // The root interval (lcp 0) is never reported, mirroring the tree
  // skipping its root; a floor of 1 keeps that true for MinLength == 0.
  const unsigned MinLen = MinLength < 1 ? 1 : MinLength;

  /// A completed child interval of the frame below it on the stack.
  struct ChildSpan {
    uint32_t Lb, Rb;
  };
  /// An open lcp-interval: its value, left boundary, and the child
  /// intervals found so far (left to right). Positions of [Lb..Rb] not
  /// covered by a child span are singleton children — exactly the suffix
  /// tree's direct leaf children.
  struct Frame {
    uint32_t Lcp = 0, Lb = 0;
    std::vector<ChildSpan> Children;
  };

  std::vector<Frame> Stack;
  std::vector<std::vector<ChildSpan>> Pool; // Recycled child vectors.
  std::vector<unsigned> Scratch;
  Stack.emplace_back(); // Root: lcp 0, lb 0.

  auto Process = [&](const Frame &F, uint32_t Rb) {
    if (F.Lcp < MinLen)
      return;
    Scratch.clear();
    if (LeafDescendantsMode && F.Lcp <= MaxLength) {
      // Every occurrence: all suffixes of the interval.
      Scratch.assign(SA.begin() + F.Lb, SA.begin() + Rb + 1);
    } else {
      // Direct leaf children: the gaps between child intervals.
      uint32_t Pos = F.Lb;
      for (const ChildSpan &C : F.Children) {
        assert(Pos <= C.Lb && "child spans must be disjoint and ordered");
        for (uint32_t K = Pos; K < C.Lb; ++K)
          Scratch.push_back(SA[K]);
        Pos = C.Rb + 1;
      }
      for (uint32_t K = Pos; K <= Rb; ++K)
        Scratch.push_back(SA[K]);
    }
    if (Scratch.size() >= MinOccurrences) {
      std::sort(Scratch.begin(), Scratch.end());
      Sink(F.Lcp, Scratch.data(), Scratch.size());
    }
  };

  auto TakeChildVector = [&]() {
    std::vector<ChildSpan> V;
    if (!Pool.empty()) {
      V = std::move(Pool.back());
      Pool.pop_back();
    }
    return V;
  };

  // Bottom-up sweep (Abouelhoda/Kurtz/Ohlebusch): LCP[K] closes every
  // interval on the stack deeper than it; the virtual LCP[M] = 0 flushes
  // everything but the root.
  bool HavePending = false;
  ChildSpan Pending{0, 0};
  for (uint32_t K = 1; K <= M; ++K) {
    const uint32_t LcpK = K < M ? LCP[K] : 0;
    uint32_t Lb = K - 1;
    while (LcpK < Stack.back().Lcp) {
      Frame F = std::move(Stack.back());
      Stack.pop_back();
      const uint32_t Rb = K - 1;
      Process(F, Rb);
      Lb = F.Lb;
      F.Children.clear();
      Pool.push_back(std::move(F.Children));
      if (LcpK <= Stack.back().Lcp) {
        Stack.back().Children.push_back({Lb, Rb});
      } else {
        // The popped interval becomes the first child of the interval
        // about to be pushed.
        Pending = {Lb, Rb};
        HavePending = true;
      }
    }
    if (LcpK > Stack.back().Lcp) {
      Frame NF;
      NF.Lcp = LcpK;
      NF.Lb = Lb;
      NF.Children = TakeChildVector();
      if (HavePending) {
        NF.Children.push_back(Pending);
        HavePending = false;
      }
      Stack.push_back(std::move(NF));
    }
    assert(!HavePending && "popped interval must find a parent");
  }
  assert(Stack.size() == 1 && "only the root interval survives the sweep");
}

std::vector<RepeatedSubstring>
SuffixArray::repeatedSubstrings(unsigned MinLength, unsigned MinOccurrences,
                                unsigned MaxLength) const {
  std::vector<RepeatedSubstring> Result;
  forEachRepeatedSubstring(
      MinLength, MinOccurrences, MaxLength,
      [&Result](unsigned Length, const unsigned *Starts, size_t NumStarts) {
        RepeatedSubstring RS;
        RS.Length = Length;
        RS.StartIndices.assign(Starts, Starts + NumStarts);
        Result.push_back(std::move(RS));
      });
  return Result;
}
