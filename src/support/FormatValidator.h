//===- support/FormatValidator.h - Structural invariant checks -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary for the per-format validator passes that run *after*
/// a CRC check and *before* any object construction: index-range and
/// count-cap checks, token charsets, and a recursion budget for the JSON
/// cursors. Each format keeps its own validator next to its decoder
/// (validateModuleArtifactBytes, validateRpcMessage, validateTraceProfile,
/// the journal record checks); this header is the common floor so every
/// pass fails the same way — a CorruptInput Status naming the invariant.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_FORMATVALIDATOR_H
#define MCO_SUPPORT_FORMATVALIDATOR_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace mco {
namespace validate {

/// \p Idx must be < \p Bound.
Status indexInRange(uint64_t Idx, uint64_t Bound, const char *What);

/// \p Count must be <= \p Cap (caps hostile length fields before they
/// drive allocations).
Status countWithin(uint64_t Count, uint64_t Cap, const char *What);

/// Exactly \p Digits lowercase/uppercase hex digits.
bool isHexToken(const std::string &S, size_t Digits);

/// A client-chosen request id: 1..128 chars of [A-Za-z0-9._-]. The daemon
/// enforces this at the protocol boundary, so anything else appearing in
/// a request journal is damage, not data.
bool isRequestIdToken(const std::string &S);

/// Depth budget for recursive-descent parsers over untrusted input: each
/// descend() spends one level; exhaustion means the input nests deeper
/// than any valid document and the parser must fail instead of recursing.
class RecursionBudget {
public:
  explicit RecursionBudget(unsigned MaxDepth) : Left(MaxDepth) {}
  bool descend() {
    if (Left == 0)
      return false;
    --Left;
    return true;
  }
  void ascend() { ++Left; }

private:
  unsigned Left;
};

/// Nesting allowance for the trace/RPC JSON shapes (both are at most ~4
/// levels deep; 64 leaves headroom without permitting stack exhaustion).
inline constexpr unsigned JsonMaxDepth = 64;

} // namespace validate
} // namespace mco

#endif // MCO_SUPPORT_FORMATVALIDATOR_H
