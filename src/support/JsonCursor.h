//===- support/JsonCursor.h - Hardened JSON reader for loaders -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal recursive-descent JSON reader shared by the validating
/// loaders of the JSON-shaped persisted formats (`mco-traces-v1`,
/// `mco-heat-v1`): objects, arrays, strings, unsigned integers. No
/// external JSON dependency is available in this toolchain. Input is
/// untrusted: every read is bounds-checked, numbers are overflow-checked,
/// strings are length-capped, and nesting spends the shared
/// validate::JsonMaxDepth budget. All failures are CorruptInput naming the
/// format and the byte offset.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_JSONCURSOR_H
#define MCO_SUPPORT_JSONCURSOR_H

#include "support/Error.h"
#include "support/FormatValidator.h"

#include <cstdint>
#include <string>

namespace mco {

/// Longest string any of our JSON documents legitimately contains (a
/// mangled function name); anything longer is damage or an attack on the
/// parser's memory, not data.
inline constexpr size_t JsonMaxStringBytes = 1u << 20;

class JsonCursor {
public:
  /// \p What prefixes every error ("traces JSON", "heat JSON", ...).
  JsonCursor(const std::string &S, const char *What) : S(S), What(What) {}

  Status fail(const std::string &Msg) const {
    return MCO_CORRUPT(std::string(What) + ": " + Msg + " at byte " +
                       std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  Status expect(char C) {
    if (!consume(C))
      return fail(std::string("expected '") + C + "'");
    return Status::success();
  }

  Status parseString(std::string &Out) {
    if (Status St = expect('"'); !St.ok())
      return St;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (Out.size() >= JsonMaxStringBytes)
        return fail("string too long");
      char Ch = S[Pos++];
      if (Ch == '\\' && Pos < S.size())
        Ch = S[Pos++];
      Out += Ch;
    }
    if (Pos >= S.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return Status::success();
  }

  Status parseUInt(uint64_t &Out) {
    skipWs();
    if (Pos >= S.size() || S[Pos] < '0' || S[Pos] > '9')
      return fail("expected number");
    Out = 0;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
      uint64_t Digit = uint64_t(S[Pos] - '0');
      // Overflow check: a 21+-digit number is damage, and wrapping would
      // silently turn it into a plausible id.
      if (Out > (UINT64_MAX - Digit) / 10)
        return fail("number too large");
      Out = Out * 10 + Digit;
      ++Pos;
    }
    return Status::success();
  }

  /// Skips any value (used for unknown keys, forward compatibility). The
  /// nesting budget bounds how deep a hostile document can push the scan.
  Status skipValue() {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '"') {
      std::string Tmp;
      return parseString(Tmp);
    }
    if (C == '{' || C == '[') {
      ++Pos;
      // One iterative scan over both bracket kinds, depth-budgeted.
      char Stack[validate::JsonMaxDepth];
      unsigned Depth = 0;
      Stack[Depth++] = C == '{' ? '}' : ']';
      bool InStr = false;
      while (Pos < S.size() && Depth > 0) {
        char Ch = S[Pos++];
        if (InStr) {
          if (Ch == '\\')
            ++Pos;
          else if (Ch == '"')
            InStr = false;
        } else if (Ch == '"') {
          InStr = true;
        } else if (Ch == '{' || Ch == '[') {
          if (Depth >= validate::JsonMaxDepth)
            return fail("value nests too deep");
          Stack[Depth++] = Ch == '{' ? '}' : ']';
        } else if (Ch == '}' || Ch == ']') {
          if (Ch != Stack[Depth - 1])
            return fail("mismatched bracket");
          --Depth;
        }
      }
      return Depth == 0 ? Status::success() : fail("unbalanced value");
    }
    // Number / literal: consume until a delimiter.
    while (Pos < S.size() && S[Pos] != ',' && S[Pos] != '}' && S[Pos] != ']' &&
           S[Pos] != ' ' && S[Pos] != '\n' && S[Pos] != '\t' && S[Pos] != '\r')
      ++Pos;
    return Status::success();
  }

  /// Iterates `"key": value` pairs of an object; \p OnKey parses the value.
  template <typename Fn> Status parseObject(Fn OnKey) {
    if (Status St = expect('{'); !St.ok())
      return St;
    if (consume('}'))
      return Status::success();
    for (;;) {
      std::string Key;
      if (Status St = parseString(Key); !St.ok())
        return St;
      if (Status St = expect(':'); !St.ok())
        return St;
      if (Status St = OnKey(Key); !St.ok())
        return St;
      if (consume(','))
        continue;
      return expect('}');
    }
  }

  /// Iterates the elements of an array; \p OnElem parses each.
  template <typename Fn> Status parseArray(Fn OnElem) {
    if (Status St = expect('['); !St.ok())
      return St;
    if (consume(']'))
      return Status::success();
    for (;;) {
      if (Status St = OnElem(); !St.ok())
        return St;
      if (consume(','))
        continue;
      return expect(']');
    }
  }

private:
  const std::string &S;
  const char *What;
  size_t Pos = 0;
};

} // namespace mco

#endif // MCO_SUPPORT_JSONCURSOR_H
