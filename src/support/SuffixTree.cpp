//===- support/SuffixTree.cpp - Ukkonen suffix tree ----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SuffixTree.h"

#include <algorithm>
#include <cassert>

using namespace mco;

//===----------------------------------------------------------------------===//
// EdgeTable
//===----------------------------------------------------------------------===//

static inline uint64_t mixKey(uint64_t X) {
  // splitmix64 finalizer: full-avalanche, so clustered (node, symbol) pairs
  // spread evenly over the table.
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

void SuffixTree::EdgeTable::init(size_t ExpectedEdges) {
  size_t Cap = 16;
  // Load factor <= ~0.6 at the edge bound, so construction never rehashes.
  while (Cap * 3 < (ExpectedEdges + 1) * 5)
    Cap <<= 1;
  Keys.assign(Cap, EmptyKey);
  Vals.assign(Cap, 0);
  Mask = Cap - 1;
  Count = 0;
}

size_t SuffixTree::EdgeTable::slotFor(uint64_t Key) const {
  size_t Slot = static_cast<size_t>(mixKey(Key)) & Mask;
  while (Keys[Slot] != EmptyKey && Keys[Slot] != Key)
    Slot = (Slot + 1) & Mask;
  return Slot;
}

unsigned SuffixTree::EdgeTable::find(unsigned Parent, unsigned Symbol) const {
  uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | Symbol;
  size_t Slot = slotFor(Key);
  return Keys[Slot] == Key ? Vals[Slot] : EmptyIdx;
}

void SuffixTree::EdgeTable::set(unsigned Parent, unsigned Symbol,
                                unsigned Child) {
  uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | Symbol;
  size_t Slot = slotFor(Key);
  if (Keys[Slot] == EmptyKey) {
    Keys[Slot] = Key;
    ++Count;
    // The table is pre-sized for the 2n edge bound; growing would mean the
    // bound was violated.
    assert(Count * 3 <= Keys.size() * 2 && "edge table over-full");
  }
  Vals[Slot] = Child;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

SuffixTree::SuffixTree(const std::vector<unsigned> &Str,
                       bool CollectLeafDescendants)
    : Str(Str), LeafDescendantsMode(CollectLeafDescendants) {
  // Ukkonen's bound: at most n leaves and n-1 internal nodes plus the
  // root. Reserving up front keeps the arena stable (no reallocation, so
  // in-flight references stay valid) and contiguous.
  const size_t NodeBound = 2 * Str.size() + 2;
  Nodes.reserve(NodeBound);
  Building.init(NodeBound);

  Nodes.emplace_back(); // The root; StartIdx stays EmptyIdx.
  Root = 0;
  Active.Node = Root;

  unsigned SuffixesToAdd = 0;
  for (unsigned PfxEndIdx = 0, End = static_cast<unsigned>(Str.size());
       PfxEndIdx < End; ++PfxEndIdx) {
    ++SuffixesToAdd;
    LeafEndIdx = PfxEndIdx;
    SuffixesToAdd = extend(PfxEndIdx, SuffixesToAdd);
  }

  // Freeze the leaves: every leaf edge runs to the end of the string.
  // (An empty string builds a root-only tree; Str.size() - 1 would
  // wrap to EmptyIdx, so skip the fix-up entirely.)
  if (!Str.empty())
    for (Node &N : Nodes)
      if (N.IsLeaf)
        N.EndIdx = static_cast<unsigned>(Str.size()) - 1;

  freezeEdges();
  setSuffixIndicesAndLeafRanges();
}

unsigned SuffixTree::edgeSize(const Node &N) const {
  if (N.isRoot())
    return 0;
  unsigned End = N.IsLeaf && N.EndIdx == EmptyIdx ? LeafEndIdx : N.EndIdx;
  return End - N.StartIdx + 1;
}

unsigned SuffixTree::makeLeaf(unsigned Parent, unsigned StartIdx,
                              unsigned Edge) {
  assert(Nodes.size() < Nodes.capacity() && "node arena bound violated");
  Nodes.emplace_back();
  unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
  Node &N = Nodes[Idx];
  N.StartIdx = StartIdx;
  N.EndIdx = EmptyIdx; // Implicitly tracks LeafEndIdx until frozen.
  N.IsLeaf = true;
  Building.set(Parent, Edge, Idx);
  return Idx;
}

unsigned SuffixTree::makeInternal(unsigned Parent, unsigned StartIdx,
                                  unsigned EndIdx, unsigned Edge) {
  assert(StartIdx <= EndIdx && "internal node can't have backwards edge");
  assert(Nodes.size() < Nodes.capacity() && "node arena bound violated");
  Nodes.emplace_back();
  unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
  Node &N = Nodes[Idx];
  N.StartIdx = StartIdx;
  N.EndIdx = EndIdx;
  // Every internal node's suffix link starts at the root and is refined
  // when a subsequent extension discovers the true target.
  N.Link = Root;
  Building.set(Parent, Edge, Idx);
  return Idx;
}

unsigned SuffixTree::extend(unsigned EndIdx, unsigned SuffixesToAdd) {
  unsigned NeedsLink = EmptyIdx;

  while (SuffixesToAdd > 0) {
    // If the active length is zero the next suffix starts at EndIdx.
    if (Active.Len == 0)
      Active.Idx = EndIdx;

    assert(Active.Idx <= EndIdx && "start index can't be after end index");
    unsigned FirstChar = Str[Active.Idx];

    unsigned NextNode = Building.find(Active.Node, FirstChar);
    if (NextNode == EmptyIdx) {
      // No edge starts with FirstChar: insert a fresh leaf.
      makeLeaf(Active.Node, EndIdx, FirstChar);
      if (NeedsLink != EmptyIdx) {
        Nodes[NeedsLink].Link = Active.Node;
        NeedsLink = EmptyIdx;
      }
    } else {
      unsigned SubstringLen = edgeSize(Nodes[NextNode]);

      // Walk down if the active length spans the whole edge.
      if (Active.Len >= SubstringLen) {
        Active.Idx += SubstringLen;
        Active.Len -= SubstringLen;
        Active.Node = NextNode;
        continue;
      }

      unsigned LastChar = Str[EndIdx];

      // Rule 3: the suffix is already implicitly present. Stop this phase.
      if (Str[Nodes[NextNode].StartIdx + Active.Len] == LastChar) {
        if (NeedsLink != EmptyIdx && !Nodes[Active.Node].isRoot()) {
          Nodes[NeedsLink].Link = Active.Node;
          NeedsLink = EmptyIdx;
        }
        ++Active.Len;
        break;
      }

      // Rule 2 with a split: the edge matches up to Active.Len and then
      // diverges. Split the edge and hang a new leaf off the split node.
      unsigned SplitNode =
          makeInternal(Active.Node, Nodes[NextNode].StartIdx,
                       Nodes[NextNode].StartIdx + Active.Len - 1, FirstChar);
      makeLeaf(SplitNode, EndIdx, LastChar);

      Nodes[NextNode].StartIdx += Active.Len;
      Building.set(SplitNode, Str[Nodes[NextNode].StartIdx], NextNode);

      if (NeedsLink != EmptyIdx)
        Nodes[NeedsLink].Link = SplitNode;
      NeedsLink = SplitNode;
    }

    --SuffixesToAdd;

    if (Nodes[Active.Node].isRoot()) {
      if (Active.Len > 0) {
        --Active.Len;
        Active.Idx = EndIdx - SuffixesToAdd + 1;
      }
    } else {
      assert(Nodes[Active.Node].Link != EmptyIdx &&
             "internal node must have a suffix link");
      Active.Node = Nodes[Active.Node].Link;
    }
  }
  return SuffixesToAdd;
}

void SuffixTree::freezeEdges() {
  assert((Nodes.empty() || Building.size() == Nodes.size() - 1) &&
         "every non-root node has exactly one parent edge");
  Edges.resize(Building.size());

  // Counting sort by parent: count, prefix-sum into FirstEdge, scatter.
  for (Node &N : Nodes)
    N.NumEdges = 0;
  Building.forEach([this](unsigned Parent, unsigned, unsigned) {
    ++Nodes[Parent].NumEdges;
  });
  uint32_t Offset = 0;
  for (Node &N : Nodes) {
    N.FirstEdge = Offset;
    Offset += N.NumEdges;
    N.NumEdges = 0; // Reused as the scatter cursor below.
  }
  Building.forEach([this](unsigned Parent, unsigned Symbol, unsigned Child) {
    Node &P = Nodes[Parent];
    Edges[P.FirstEdge + P.NumEdges++] = {Symbol, Child};
  });

  // The hash table iterates in slot order; sort each node's range by
  // symbol so every traversal is deterministic by construction.
  for (Node &N : Nodes)
    if (N.NumEdges > 1)
      std::sort(Edges.begin() + N.FirstEdge,
                Edges.begin() + N.FirstEdge + N.NumEdges,
                [](const Edge &A, const Edge &B) {
                  return A.Symbol < B.Symbol;
                });

  // Construction is done; drop the table (the CSR answers all queries).
  Building = EdgeTable();
}

unsigned SuffixTree::findChild(const Node &N, unsigned Symbol) const {
  const Edge *First = Edges.data() + N.FirstEdge;
  const Edge *Last = First + N.NumEdges;
  const Edge *It = std::lower_bound(
      First, Last, Symbol,
      [](const Edge &E, unsigned S) { return E.Symbol < S; });
  return (It != Last && It->Symbol == Symbol) ? It->Child : EmptyIdx;
}

void SuffixTree::setSuffixIndicesAndLeafRanges() {
  // Iterative DFS in sorted-edge order so all downstream consumers observe
  // a deterministic traversal (edges are sorted, so pushing them in
  // descending symbol order pops them ascending).
  struct Frame {
    unsigned NodeIdx;
    unsigned ParentConcatLen;
    bool Entered;
  };
  LeafOrder.reserve(Str.size());
  std::vector<Frame> Stack;
  Stack.push_back({Root, 0, false});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    Node &N = Nodes[F.NodeIdx];
    if (!F.Entered) {
      F.Entered = true;
      N.ConcatLen = F.ParentConcatLen + edgeSize(N);
      N.LeftLeaf = static_cast<unsigned>(LeafOrder.size());
      if (N.IsLeaf) {
        assert(Str.size() >= N.ConcatLen && "leaf deeper than string");
        N.SuffixIdx = static_cast<unsigned>(Str.size()) - N.ConcatLen;
        LeafOrder.push_back(N.SuffixIdx);
        N.RightLeaf = static_cast<unsigned>(LeafOrder.size());
        Stack.pop_back();
        continue;
      }
      // Push children in reverse-sorted order so they pop sorted.
      unsigned MyConcat = N.ConcatLen;
      for (uint32_t E = N.NumEdges; E != 0; --E)
        Stack.push_back({Edges[N.FirstEdge + E - 1].Child, MyConcat, false});
      continue;
    }
    // Post-order exit for an internal node.
    N.RightLeaf = static_cast<unsigned>(LeafOrder.size());
    Stack.pop_back();
  }
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

void SuffixTree::forEachRepeatedSubstring(
    unsigned MinLength, unsigned MinOccurrences, unsigned MaxLength,
    const RepeatedSubstringSink &Sink) const {
  if (Nodes.size() <= 1)
    return;

  std::vector<unsigned> Scratch;
  std::vector<unsigned> Stack;
  Stack.push_back(Root);
  while (!Stack.empty()) {
    unsigned Idx = Stack.back();
    Stack.pop_back();
    const Node &N = Nodes[Idx];
    if (N.IsLeaf)
      continue;

    // Push children in reverse-sorted order so internal nodes are visited
    // pre-order with ascending edge symbols — deterministic and identical
    // across runs.
    for (uint32_t E = N.NumEdges; E != 0; --E)
      Stack.push_back(Edges[N.FirstEdge + E - 1].Child);

    if (N.isRoot() || N.ConcatLen < MinLength)
      continue;

    Scratch.clear();
    if (LeafDescendantsMode && N.ConcatLen <= MaxLength) {
      Scratch.assign(LeafOrder.begin() + N.LeftLeaf,
                     LeafOrder.begin() + N.RightLeaf);
    } else {
      for (uint32_t E = 0; E != N.NumEdges; ++E) {
        const Node &Child = Nodes[Edges[N.FirstEdge + E].Child];
        if (Child.IsLeaf)
          Scratch.push_back(Child.SuffixIdx);
      }
    }
    if (Scratch.size() >= MinOccurrences) {
      std::sort(Scratch.begin(), Scratch.end());
      Sink(N.ConcatLen, Scratch.data(), Scratch.size());
    }
  }
}

std::vector<RepeatedSubstring>
SuffixTree::repeatedSubstrings(unsigned MinLength, unsigned MinOccurrences,
                               unsigned MaxLength) const {
  std::vector<RepeatedSubstring> Result;
  forEachRepeatedSubstring(
      MinLength, MinOccurrences, MaxLength,
      [&Result](unsigned Length, const unsigned *Starts, size_t NumStarts) {
        RepeatedSubstring RS;
        RS.Length = Length;
        RS.StartIndices.assign(Starts, Starts + NumStarts);
        Result.push_back(std::move(RS));
      });
  return Result;
}

size_t SuffixTree::memoryBytes() const {
  return Nodes.capacity() * sizeof(Node) + Edges.capacity() * sizeof(Edge) +
         LeafOrder.capacity() * sizeof(unsigned);
}

bool SuffixTree::contains(const std::vector<unsigned> &Pattern) const {
  if (Pattern.empty())
    return true;
  unsigned NodeIdx = Root;
  size_t P = 0;
  while (P < Pattern.size()) {
    unsigned ChildIdx = findChild(Nodes[NodeIdx], Pattern[P]);
    if (ChildIdx == EmptyIdx)
      return false;
    const Node &Child = Nodes[ChildIdx];
    unsigned Len = Child.EndIdx - Child.StartIdx + 1;
    for (unsigned I = 0; I < Len && P < Pattern.size(); ++I, ++P)
      if (Str[Child.StartIdx + I] != Pattern[P])
        return false;
    NodeIdx = ChildIdx;
  }
  return true;
}
