//===- support/SuffixTree.cpp - Ukkonen suffix tree ----------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SuffixTree.h"

#include <algorithm>
#include <cassert>

using namespace mco;

SuffixTree::SuffixTree(const std::vector<unsigned> &Str,
                       bool CollectLeafDescendants)
    : Str(Str), LeafDescendantsMode(CollectLeafDescendants) {
  Nodes.emplace_back(); // The root; StartIdx stays EmptyIdx.
  Root = 0;
  Active.Node = Root;

  unsigned SuffixesToAdd = 0;
  for (unsigned PfxEndIdx = 0, End = static_cast<unsigned>(Str.size());
       PfxEndIdx < End; ++PfxEndIdx) {
    ++SuffixesToAdd;
    LeafEndIdx = PfxEndIdx;
    SuffixesToAdd = extend(PfxEndIdx, SuffixesToAdd);
  }

  // Freeze the leaves: every leaf edge runs to the end of the string.
  // (An empty string builds a root-only tree; Str.size() - 1 would
  // wrap to EmptyIdx, so skip the fix-up entirely.)
  if (!Str.empty())
    for (Node &N : Nodes)
      if (N.IsLeaf)
        N.EndIdx = static_cast<unsigned>(Str.size()) - 1;

  setSuffixIndicesAndLeafRanges();
}

unsigned SuffixTree::edgeSize(const Node &N) const {
  if (N.isRoot())
    return 0;
  unsigned End = N.IsLeaf && N.EndIdx == EmptyIdx ? LeafEndIdx : N.EndIdx;
  return End - N.StartIdx + 1;
}

unsigned SuffixTree::makeLeaf(unsigned Parent, unsigned StartIdx,
                              unsigned Edge) {
  Nodes.emplace_back();
  unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
  Node &N = Nodes[Idx];
  N.StartIdx = StartIdx;
  N.EndIdx = EmptyIdx; // Implicitly tracks LeafEndIdx until frozen.
  N.IsLeaf = true;
  Nodes[Parent].Children[Edge] = Idx;
  return Idx;
}

unsigned SuffixTree::makeInternal(unsigned Parent, unsigned StartIdx,
                                  unsigned EndIdx, unsigned Edge) {
  assert(StartIdx <= EndIdx && "internal node can't have backwards edge");
  Nodes.emplace_back();
  unsigned Idx = static_cast<unsigned>(Nodes.size()) - 1;
  Node &N = Nodes[Idx];
  N.StartIdx = StartIdx;
  N.EndIdx = EndIdx;
  // Every internal node's suffix link starts at the root and is refined
  // when a subsequent extension discovers the true target.
  N.Link = Root;
  Nodes[Parent].Children[Edge] = Idx;
  return Idx;
}

unsigned SuffixTree::extend(unsigned EndIdx, unsigned SuffixesToAdd) {
  unsigned NeedsLink = EmptyIdx;

  while (SuffixesToAdd > 0) {
    // If the active length is zero the next suffix starts at EndIdx.
    if (Active.Len == 0)
      Active.Idx = EndIdx;

    assert(Active.Idx <= EndIdx && "start index can't be after end index");
    unsigned FirstChar = Str[Active.Idx];

    auto ChildIt = Nodes[Active.Node].Children.find(FirstChar);
    if (ChildIt == Nodes[Active.Node].Children.end()) {
      // No edge starts with FirstChar: insert a fresh leaf.
      makeLeaf(Active.Node, EndIdx, FirstChar);
      if (NeedsLink != EmptyIdx) {
        Nodes[NeedsLink].Link = Active.Node;
        NeedsLink = EmptyIdx;
      }
    } else {
      unsigned NextNode = ChildIt->second;
      unsigned SubstringLen = edgeSize(Nodes[NextNode]);

      // Walk down if the active length spans the whole edge.
      if (Active.Len >= SubstringLen) {
        Active.Idx += SubstringLen;
        Active.Len -= SubstringLen;
        Active.Node = NextNode;
        continue;
      }

      unsigned LastChar = Str[EndIdx];

      // Rule 3: the suffix is already implicitly present. Stop this phase.
      if (Str[Nodes[NextNode].StartIdx + Active.Len] == LastChar) {
        if (NeedsLink != EmptyIdx && !Nodes[Active.Node].isRoot()) {
          Nodes[NeedsLink].Link = Active.Node;
          NeedsLink = EmptyIdx;
        }
        ++Active.Len;
        break;
      }

      // Rule 2 with a split: the edge matches up to Active.Len and then
      // diverges. Split the edge and hang a new leaf off the split node.
      unsigned SplitNode =
          makeInternal(Active.Node, Nodes[NextNode].StartIdx,
                       Nodes[NextNode].StartIdx + Active.Len - 1, FirstChar);
      makeLeaf(SplitNode, EndIdx, LastChar);

      Nodes[NextNode].StartIdx += Active.Len;
      Nodes[SplitNode].Children[Str[Nodes[NextNode].StartIdx]] = NextNode;

      if (NeedsLink != EmptyIdx)
        Nodes[NeedsLink].Link = SplitNode;
      NeedsLink = SplitNode;
    }

    --SuffixesToAdd;

    if (Nodes[Active.Node].isRoot()) {
      if (Active.Len > 0) {
        --Active.Len;
        Active.Idx = EndIdx - SuffixesToAdd + 1;
      }
    } else {
      assert(Nodes[Active.Node].Link != EmptyIdx &&
             "internal node must have a suffix link");
      Active.Node = Nodes[Active.Node].Link;
    }
  }
  return SuffixesToAdd;
}

void SuffixTree::setSuffixIndicesAndLeafRanges() {
  // Iterative DFS in sorted-edge order so all downstream consumers observe
  // a deterministic traversal (Children is ordered, so pushing edges in
  // descending key order pops them ascending).
  struct Frame {
    unsigned NodeIdx;
    unsigned ParentConcatLen;
    bool Entered;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Root, 0, false});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    Node &N = Nodes[F.NodeIdx];
    if (!F.Entered) {
      F.Entered = true;
      N.ConcatLen = F.ParentConcatLen + edgeSize(N);
      N.LeftLeaf = static_cast<unsigned>(LeafOrder.size());
      if (N.IsLeaf) {
        assert(Str.size() >= N.ConcatLen && "leaf deeper than string");
        N.SuffixIdx = static_cast<unsigned>(Str.size()) - N.ConcatLen;
        LeafOrder.push_back(F.NodeIdx);
        N.RightLeaf = static_cast<unsigned>(LeafOrder.size());
        Stack.pop_back();
        continue;
      }
      // Push children in reverse-sorted order so they pop sorted.
      unsigned MyConcat = N.ConcatLen;
      for (auto It = N.Children.rbegin(), E = N.Children.rend(); It != E;
           ++It)
        Stack.push_back({It->second, MyConcat, false});
      continue;
    }
    // Post-order exit for an internal node.
    N.RightLeaf = static_cast<unsigned>(LeafOrder.size());
    Stack.pop_back();
  }
}

std::vector<RepeatedSubstring>
SuffixTree::repeatedSubstrings(unsigned MinLength, unsigned MinOccurrences,
                               unsigned MaxLength) const {
  std::vector<RepeatedSubstring> Result;
  if (Nodes.size() <= 1)
    return Result;

  std::vector<unsigned> Stack;
  Stack.push_back(Root);
  while (!Stack.empty()) {
    unsigned Idx = Stack.back();
    Stack.pop_back();
    const Node &N = Nodes[Idx];
    if (N.IsLeaf)
      continue;

    // Visit children in sorted order for determinism (Children is an
    // ordered map, so in-order iteration is already sorted by key).
    for (const auto &KV : N.Children)
      Stack.push_back(KV.second);

    if (N.isRoot() || N.ConcatLen < MinLength)
      continue;

    RepeatedSubstring RS;
    RS.Length = N.ConcatLen;
    if (LeafDescendantsMode && N.ConcatLen <= MaxLength) {
      for (unsigned L = N.LeftLeaf; L != N.RightLeaf; ++L)
        RS.StartIndices.push_back(Nodes[LeafOrder[L]].SuffixIdx);
    } else {
      for (const auto &KV : N.Children) {
        const Node &Child = Nodes[KV.second];
        if (Child.IsLeaf)
          RS.StartIndices.push_back(Child.SuffixIdx);
      }
    }
    if (RS.StartIndices.size() >= MinOccurrences) {
      std::sort(RS.StartIndices.begin(), RS.StartIndices.end());
      Result.push_back(std::move(RS));
    }
  }
  return Result;
}

bool SuffixTree::contains(const std::vector<unsigned> &Pattern) const {
  if (Pattern.empty())
    return true;
  unsigned NodeIdx = Root;
  size_t P = 0;
  while (P < Pattern.size()) {
    const Node &N = Nodes[NodeIdx];
    auto It = N.Children.find(Pattern[P]);
    if (It == N.Children.end())
      return false;
    const Node &Child = Nodes[It->second];
    unsigned Len = Child.EndIdx - Child.StartIdx + 1;
    for (unsigned I = 0; I < Len && P < Pattern.size(); ++I, ++P)
      if (Str[Child.StartIdx + I] != Pattern[P])
        return false;
    NodeIdx = It->second;
  }
  return true;
}
