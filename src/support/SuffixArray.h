//===- support/SuffixArray.h - SA-IS enhanced suffix array ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache-efficient candidate discovery engine: a suffix array built
/// with the linear-time SA-IS induced-sorting algorithm (Nong, Zhang,
/// Chan, "Two Efficient Algorithms for Linear Time Suffix Array
/// Construction"), the Kasai longest-common-prefix array, and a bottom-up
/// LCP-interval enumeration in the style of Abouelhoda, Kurtz, Ohlebusch
/// ("Replacing Suffix Trees with Enhanced Suffix Arrays").
///
/// The lcp-interval tree of the (SA, LCP) pair is exactly the internal-node
/// structure of the suffix tree, so this engine reports the same repeated
/// substrings as support/SuffixTree.h — including the direct-leaf-children
/// approximation (a direct leaf child of an internal node is a singleton
/// child interval) and the leaf-descendant mode with its MaxLength
/// fallback. When the subject string ends in an element unique to the
/// string (the instruction mapper guarantees this with per-block
/// terminators), the two engines' repeated-substring sets are identical;
/// the machine outliner relies on this and produces byte-identical output
/// with either engine.
///
/// Unlike the tree (~60 bytes and one hash probe per node), the working
/// set here is a handful of flat integer arrays scanned sequentially, which
/// is the whole point: per-round candidate discovery over a mapped
/// 28M-instruction string is memory-bound, and the array engine trades
/// pointer chasing for prefetchable linear passes.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_SUFFIXARRAY_H
#define MCO_SUPPORT_SUFFIXARRAY_H

#include "support/SuffixTree.h" // RepeatedSubstring, RepeatedSubstringSink

#include <cstdint>
#include <vector>

namespace mco {

/// Enhanced suffix array (SA + LCP) over a string of unsigned integers.
class SuffixArray {
public:
  /// Builds the suffix array and LCP array for \p Str.
  ///
  /// \param Str the subject string. The caller must keep it alive for the
  ///        lifetime of this object. For engine-equivalent occurrence
  ///        reporting the final element should be unique in the string.
  /// \param CollectLeafDescendants if true, repeated substrings report
  ///        every occurrence (all suffixes of the lcp-interval) rather
  ///        than only singleton child intervals (= the suffix tree's
  ///        direct leaf children).
  explicit SuffixArray(const std::vector<unsigned> &Str,
                       bool CollectLeafDescendants = false);

  SuffixArray(const SuffixArray &) = delete;
  SuffixArray &operator=(const SuffixArray &) = delete;

  /// The suffix array: SA[k] is the start index of the k-th smallest
  /// suffix. Size == Str.size().
  const std::vector<uint32_t> &suffixArray() const { return SA; }

  /// LCP[k] = longest common prefix of suffixes SA[k-1] and SA[k];
  /// LCP[0] == 0. Size == Str.size().
  const std::vector<uint32_t> &lcpArray() const { return LCP; }

  /// Enumerates every repeated substring with length >= \p MinLength that
  /// occurs at least \p MinOccurrences times; same contract as
  /// SuffixTree::repeatedSubstrings (in leaf-descendant mode, substrings
  /// longer than \p MaxLength fall back to direct-children reporting).
  std::vector<RepeatedSubstring>
  repeatedSubstrings(unsigned MinLength = 2, unsigned MinOccurrences = 2,
                     unsigned MaxLength = 4096) const;

  /// Streaming variant: invokes \p Sink once per reported pattern with
  /// occurrence start indices sorted ascending. Deterministic bottom-up
  /// lcp-interval order.
  void forEachRepeatedSubstring(unsigned MinLength, unsigned MinOccurrences,
                                unsigned MaxLength,
                                const RepeatedSubstringSink &Sink) const;

  /// \returns the bytes held by the SA/LCP arrays (capacity; the
  /// construction scratch is freed before the constructor returns, and its
  /// peak is included).
  size_t memoryBytes() const { return PeakBytes; }

private:
  const std::vector<unsigned> &Str;
  std::vector<uint32_t> SA;
  std::vector<uint32_t> LCP;
  bool LeafDescendantsMode;
  size_t PeakBytes = 0;
};

/// Standalone SA-IS: \returns the suffix array of \p Str (values may be
/// arbitrary unsigned ints; the alphabet is rank-compressed internally).
/// Exposed for tests and benches.
std::vector<uint32_t> buildSuffixArray(const std::vector<unsigned> &Str);

/// Standalone Kasai: \returns the LCP array for \p Str and its suffix
/// array \p SA (LCP[0] == 0). Exposed for tests and benches.
std::vector<uint32_t> buildLcpArray(const std::vector<unsigned> &Str,
                                    const std::vector<uint32_t> &SA);

} // namespace mco

#endif // MCO_SUPPORT_SUFFIXARRAY_H
