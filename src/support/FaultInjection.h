//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault-injection sites used to exercise
/// the guarded-outlining recovery paths (rollback, quarantine, module
/// degradation) deterministically. Sites are compiled into the production
/// code paths but cost one relaxed atomic load while disarmed.
///
/// Registered sites:
///
///   outliner.rewrite.corrupt  - a call-site rewrite emits a branch to a
///                               nonexistent block (caught by verifyModule)
///   mapper.hash.collide       - two distinct instructions receive the same
///                               mapping id, producing semantically wrong
///                               "repeats" (caught by the guard's
///                               edit-integrity / differential-exec checks)
///   pipeline.module.fail      - outlining a module throws before it starts
///                               (per-module fan-out degradation path)
///   threadpool.task.throw     - a parallelFor task throws (exception
///                               propagation across pool lanes)
///   cache.entry.corrupt       - an artifact-cache store writes a bit-flipped
///                               entry (caught at load by the checksum seal;
///                               quarantined, rebuilt)
///   cache.lock.stale          - a dead-owner lock file is planted before an
///                               acquire (stale-lock recovery path)
///   pipeline.module.hang      - outlining a module stalls until the
///                               watchdog's cooperative cancel fires
///                               (--module-timeout-ms degradation path)
///   cache.writer.contend      - a shared-store writer-lock acquisition
///                               attempt is treated as contended, forcing
///                               the backoff/retry path
///   daemon.conn.drop          - an mco-rpc-v1 frame send/receive abruptly
///                               closes the connection (client retry path)
///   daemon.worker.crash       - a daemon worker throws at the top of
///                               request processing (retryable-error reply)
///   daemon.queue.overflow     - admission control reports the bounded
///                               queue full (RETRY_AFTER backpressure)
///   daemon.request.hang       - request processing stalls until the
///                               per-request watchdog cancels it
///   rpc.frame.garble          - an mco-rpc-v1 frame is sent with corrupted
///                               payload bytes (malformed JSON on a live
///                               connection; the receiver must reply with a
///                               fatal error and close, never die)
///   artifact.seal.garble      - a sealed artifact is written with a
///                               mangled envelope header (structural
///                               damage, vs cache.entry.corrupt's payload
///                               bit flip; quarantined at load)
///   objfile.reloc.garble      - an MCOB1 container is written with one
///                               relocation target flipped out of range
///                               (the loader's relocation validation must
///                               report a Status, never resolve a bogus
///                               symbol index)
///
/// A spec configures one site: `site[@round][:rate[,seed]]` with rate in
/// [0,1] (default 1) and round 0/omitted meaning "any round"; several specs
/// are separated by ';'. The fire decision for the Nth check of a site is
/// a pure function of (seed, site, N), so runs are reproducible at any
/// thread count even though the *interleaving* of checks is not.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_FAULTINJECTION_H
#define MCO_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mco {

/// Thrown by sites configured to fail by throwing.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &Site)
      : std::runtime_error("injected fault at site '" + Site + "'"),
        SiteName(Site) {}
  const std::string &site() const { return SiteName; }

private:
  std::string SiteName;
};

namespace fault_detail {
/// True while at least one spec is configured. Read on the hot path.
extern std::atomic<bool> Armed;
} // namespace fault_detail

class FaultInjection {
public:
  /// The process-wide registry.
  static FaultInjection &instance();

  /// The names every spec must use.
  static const std::vector<std::string> &knownSites();

  /// Parses and installs \p SpecList ("site[@round][:rate[,seed]]", ';'
  /// separated; empty clears). Replaces any previous configuration. Not
  /// thread-safe against concurrent checks: configure before starting a
  /// build, as the tools and tests do.
  Status configure(const std::string &SpecList);

  /// Disarms every site and resets counters.
  void clear();

  bool armed() const {
    return fault_detail::Armed.load(std::memory_order_relaxed);
  }

  /// Current outlining round for `@round`-filtered specs. One global slot:
  /// concurrent per-module engines at different rounds overwrite each
  /// other, so round filters are exact for whole-program builds and
  /// approximate under the per-module fan-out (documented in DESIGN.md).
  void setRound(unsigned Round) {
    CurrentRound.store(Round, std::memory_order_relaxed);
  }
  unsigned round() const {
    return CurrentRound.load(std::memory_order_relaxed);
  }

  /// Draws the site's next deterministic decision. Call through
  /// faultSiteFires(), which short-circuits while disarmed.
  bool shouldFireSlow(const char *Site);

  /// Total times \p Site fired since the last configure()/clear().
  uint64_t firedCount(const std::string &Site) const;

  struct SiteReport {
    std::string Site;
    uint64_t Draws = 0;
    uint64_t Fired = 0;
  };
  /// One entry per configured spec.
  std::vector<SiteReport> report() const;

  /// Canonical rendering of the configured specs whose sites can change the
  /// *content* a build produces (everything except the cache.*, daemon.*,
  /// rpc.*, and artifact.* sites, which only perturb the store/transport
  /// around the build). The artifact cache
  /// folds this into its keys so a fault-injected build can never serve its
  /// artifacts to a clean build.
  std::string contentAffectingConfig() const;

private:
  struct SiteSpec {
    std::string Site;
    unsigned Round = 0; ///< 0 = any round.
    double Rate = 1.0;
    uint64_t Seed = 0;
    std::atomic<uint64_t> Draws{0};
    std::atomic<uint64_t> Fired{0};
  };
  std::vector<std::unique_ptr<SiteSpec>> Specs;
  std::atomic<unsigned> CurrentRound{0};
};

/// \returns true if the armed registry decides \p Site fails this time.
inline bool faultSiteFires(const char *Site) {
  return fault_detail::Armed.load(std::memory_order_relaxed) &&
         FaultInjection::instance().shouldFireSlow(Site);
}

/// Throws InjectedFault when \p Site fires.
inline void faultSiteCheck(const char *Site) {
  if (faultSiteFires(Site))
    throw InjectedFault(Site);
}

/// Publishes the round for `@round` spec filters; no-op while disarmed.
inline void faultSetRound(unsigned Round) {
  if (fault_detail::Armed.load(std::memory_order_relaxed))
    FaultInjection::instance().setRound(Round);
}

// Site name constants (use these, not string literals, at check sites).
inline constexpr const char *FaultOutlinerRewriteCorrupt =
    "outliner.rewrite.corrupt";
inline constexpr const char *FaultMapperHashCollide = "mapper.hash.collide";
inline constexpr const char *FaultPipelineModuleFail = "pipeline.module.fail";
inline constexpr const char *FaultThreadPoolTaskThrow =
    "threadpool.task.throw";
inline constexpr const char *FaultCacheEntryCorrupt = "cache.entry.corrupt";
inline constexpr const char *FaultCacheLockStale = "cache.lock.stale";
inline constexpr const char *FaultPipelineModuleHang = "pipeline.module.hang";
inline constexpr const char *FaultCacheWriterContend = "cache.writer.contend";
inline constexpr const char *FaultDaemonConnDrop = "daemon.conn.drop";
inline constexpr const char *FaultDaemonWorkerCrash = "daemon.worker.crash";
inline constexpr const char *FaultDaemonQueueOverflow =
    "daemon.queue.overflow";
inline constexpr const char *FaultDaemonRequestHang = "daemon.request.hang";
inline constexpr const char *FaultRpcFrameGarble = "rpc.frame.garble";
inline constexpr const char *FaultArtifactSealGarble = "artifact.seal.garble";
inline constexpr const char *FaultObjfileRelocGarble = "objfile.reloc.garble";

} // namespace mco

#endif // MCO_SUPPORT_FAULTINJECTION_H
