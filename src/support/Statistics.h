//===- support/Statistics.h - Regression & summary statistics --*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small numeric helpers used by the evaluation harness: ordinary
/// least-squares linear regression with R^2 (Fig. 1 slope analysis),
/// power-law fitting in log-log space (Fig. 5), percentiles (P50 spans),
/// geometric means, and histogram construction (Fig. 8).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_SUPPORT_STATISTICS_H
#define MCO_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mco {

/// Result of an ordinary least-squares fit y = Slope * x + Intercept.
struct LinearFit {
  double Slope = 0;
  double Intercept = 0;
  /// Coefficient of determination in [0, 1].
  double R2 = 0;

  double eval(double X) const { return Slope * X + Intercept; }
};

/// Fits y = Slope * x + Intercept by least squares.
///
/// \pre Xs.size() == Ys.size() and at least two points are provided.
LinearFit fitLinear(const std::vector<double> &Xs,
                    const std::vector<double> &Ys);

/// Result of a power-law fit y = A * x^B (fit as a line in log-log space).
struct PowerLawFit {
  double A = 0;
  double B = 0;
  /// R^2 of the log-log linear fit; the paper reports 99.4% for Fig. 5.
  double R2 = 0;

  double eval(double X) const;
};

/// Fits y = A * x^B over strictly positive data.
PowerLawFit fitPowerLaw(const std::vector<double> &Xs,
                        const std::vector<double> &Ys);

/// \returns the P-th percentile (P in [0, 100]) by linear interpolation.
/// The input need not be sorted. \pre Values is non-empty.
double percentile(std::vector<double> Values, double P);

/// \returns the geometric mean. \pre all values are positive and non-empty.
double geometricMean(const std::vector<double> &Values);

/// \returns the arithmetic mean. \pre Values is non-empty.
double mean(const std::vector<double> &Values);

/// A histogram over integer-valued bins (e.g. candidate sequence lengths,
/// Fig. 8). Bin 'K' counts samples with value exactly K.
class IntHistogram {
public:
  void add(uint64_t Value, uint64_t Count = 1) { Bins[Value] += Count; }

  uint64_t count(uint64_t Value) const {
    auto It = Bins.find(Value);
    return It == Bins.end() ? 0 : It->second;
  }

  uint64_t totalCount() const;
  uint64_t maxValue() const;

  /// Ordered (value, count) pairs for printing.
  const std::map<uint64_t, uint64_t> &bins() const { return Bins; }

  bool empty() const { return Bins.empty(); }

private:
  std::map<uint64_t, uint64_t> Bins;
};

} // namespace mco

#endif // MCO_SUPPORT_STATISTICS_H
