//===- support/FileAtomics.cpp - Crash-safe file primitives ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FileAtomics.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace mco;

namespace fs = std::filesystem;

namespace {

std::string errnoMessage(const std::string &What) {
  return What + ": " + std::strerror(errno);
}

/// fsyncs the directory containing \p Path so a rename into it is durable.
/// Best-effort: some filesystems reject directory fsync; a failure there
/// narrows the crash window but cannot corrupt anything (the rename itself
/// was atomic).
void fsyncParentDir(const std::string &Path) {
  fs::path Dir = fs::path(Path).parent_path();
  if (Dir.empty())
    Dir = ".";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

Status mco::ensureDir(const std::string &Path) {
  std::error_code EC;
  fs::create_directories(Path, EC);
  if (EC && !fs::is_directory(Path))
    return MCO_ERROR("cannot create directory '" + Path +
                     "': " + EC.message());
  return Status::success();
}

bool mco::fileExists(const std::string &Path) {
  std::error_code EC;
  return fs::exists(Path, EC);
}

Expected<std::string> mco::readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return MCO_ERROR("cannot open '" + Path + "' for reading");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return MCO_ERROR("read failed on '" + Path + "'");
  return Buf.str();
}

Status mco::atomicWriteFile(const std::string &Path,
                            const std::string &Bytes) {
  // Unique temp name in the same directory (rename must not cross
  // filesystems). pid + counter keeps concurrent writers apart.
  static std::atomic<uint64_t> Counter{0};
  char Suffix[64];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    Counter.fetch_add(1, std::memory_order_relaxed)));
  const std::string Tmp = Path + Suffix;

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return MCO_ERROR(errnoMessage("cannot create temp file '" + Tmp + "'"));
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Status S = MCO_ERROR(errnoMessage("write failed on '" + Tmp + "'"));
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return S;
    }
    Off += static_cast<size_t>(N);
  }
  if (::fsync(Fd) != 0) {
    Status S = MCO_ERROR(errnoMessage("fsync failed on '" + Tmp + "'"));
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return S;
  }
  ::close(Fd);

  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status S = MCO_ERROR(
        errnoMessage("rename '" + Tmp + "' -> '" + Path + "' failed"));
    ::unlink(Tmp.c_str());
    return S;
  }
  fsyncParentDir(Path);
  return Status::success();
}

Status mco::removeFileIfExists(const std::string &Path) {
  if (::unlink(Path.c_str()) != 0 && errno != ENOENT)
    return MCO_ERROR(errnoMessage("cannot remove '" + Path + "'"));
  return Status::success();
}

bool FileLock::processAlive(long Pid) {
  if (Pid <= 0)
    return false;
  // Signal 0 probes existence without delivering anything; EPERM still
  // means the pid exists (owned by another user).
  return ::kill(static_cast<pid_t>(Pid), 0) == 0 || errno == EPERM;
}

namespace {

/// Writes a lock file at \p Path owned by a pid that cannot be alive
/// (beyond the kernel's pid ceiling), simulating a build that died while
/// holding the lock.
void plantStaleLock(const std::string &Path) {
  std::string Body = "pid 536870911\n";
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (Fd < 0)
    return; // Someone really holds it; nothing to plant.
  (void)!::write(Fd, Body.data(), Body.size());
  ::close(Fd);
}

/// \returns the pid recorded in lock file \p Path, or -1 if unreadable.
long lockOwner(const std::string &Path) {
  Expected<std::string> Bytes = readFileBytes(Path);
  if (!Bytes.ok())
    return -1;
  long Pid = -1;
  if (std::sscanf(Bytes->c_str(), "pid %ld", &Pid) != 1)
    return -1;
  return Pid;
}

} // namespace

Status FileLock::acquire(const std::string &Path) {
  if (Held)
    return MCO_ERROR("lock already held: '" + LockPath + "'");

  if (faultSiteFires(FaultCacheLockStale))
    plantStaleLock(Path);

  const long MyPid = static_cast<long>(::getpid());
  char Body[64];
  std::snprintf(Body, sizeof(Body), "pid %ld\n", MyPid);
  static std::atomic<uint64_t> StealCounter{0};

  // Takeover protocol (multi-client safe): a stale lock is consumed with
  // an atomic rename, so two stealers that both observed the same dead
  // pid can never both consume it — the loser's rename fails with ENOENT
  // and the subsequent O_EXCL create is the single arbiter. Nobody ever
  // unlinks the live path, so a fresh lock cannot be destroyed by a
  // racing takeover; and every successful create re-reads the path to
  // confirm it still records this process before reporting success.
  for (int Attempt = 0; Attempt < 8; ++Attempt) {
    int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (Fd >= 0) {
      (void)!::write(Fd, Body, std::strlen(Body));
      ::fsync(Fd);
      ::close(Fd);
      fsyncParentDir(Path);
      // Post-acquire verification: if a mis-sequenced takeover replaced
      // the file we just created, the path no longer records our pid —
      // back off (never removing the replacement) instead of returning a
      // lock two processes believe they hold.
      if (lockOwner(Path) != MyPid)
        continue;
      LockPath = Path;
      Held = true;
      return Status::success();
    }
    if (errno != EEXIST)
      return MCO_ERROR(errnoMessage("cannot create lock '" + Path + "'"));

    long Owner = lockOwner(Path);
    if (Owner > 0 && Owner != MyPid && processAlive(Owner))
      return MCO_ERROR("lock '" + Path + "' held by live pid " +
                       std::to_string(Owner));

    if (TestHookBeforeSteal)
      TestHookBeforeSteal();

    // Dead owner (or unreadable lock, e.g. torn by a kill mid-write):
    // consume the stale incarnation atomically.
    char Suffix[64];
    std::snprintf(Suffix, sizeof(Suffix), ".stale.%ld.%llu", MyPid,
                  static_cast<unsigned long long>(StealCounter.fetch_add(
                      1, std::memory_order_relaxed)));
    const std::string Stolen = Path + Suffix;
    if (::rename(Path.c_str(), Stolen.c_str()) != 0) {
      if (errno == ENOENT)
        continue; // A racing stealer consumed it first; re-contend.
      return MCO_ERROR(errnoMessage("cannot steal stale lock '" + Path +
                                    "'"));
    }
    // Re-verify what was actually stolen: between observing the dead
    // owner and the rename, a racing stealer may have completed its own
    // takeover, making the file at Path a live lock again. Restore it —
    // its owner's post-acquire verification tolerates the round trip.
    long StolenOwner = lockOwner(Stolen);
    if (StolenOwner > 0 && StolenOwner != MyPid &&
        processAlive(StolenOwner)) {
      ::rename(Stolen.c_str(), Path.c_str());
      return MCO_ERROR("lock '" + Path + "' held by live pid " +
                       std::to_string(StolenOwner) +
                       " (acquired during takeover)");
    }
    ::unlink(Stolen.c_str());
    ++StaleRecovered;
  }
  return MCO_ERROR("lock '" + Path +
                   "' could not be acquired (repeated steal races)");
}

void FileLock::release() {
  if (!Held)
    return;
  ::unlink(LockPath.c_str());
  Held = false;
  LockPath.clear();
}
