//===- support/Checksum.cpp - Streaming digests & sealed artifacts --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"

#include "support/BinReader.h"
#include "support/FaultInjection.h"

#include <array>
#include <cstdio>
#include <cstring>

using namespace mco;

namespace {

/// Byte-at-a-time CRC32C table for the reflected polynomial 0x82F63B78.
const std::array<uint32_t, 256> &crcTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (C >> 1) ^ 0x82F63B78u : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace

void Crc32c::update(const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  const std::array<uint32_t, 256> &T = crcTable();
  uint32_t C = State;
  for (size_t I = 0; I < Len; ++I)
    C = T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  State = C;
}

std::string mco::sealArtifact(const std::string &Payload) {
  char Header[64];
  std::snprintf(Header, sizeof(Header), "%s %zu %08x\n", ArtifactSealMagic,
                Payload.size(), Crc32c::of(Payload));
  std::string Out(Header);
  Out += Payload;
  // The `artifact.seal.garble` site mangles the *header* of a sealed write
  // (vs cache.entry.corrupt, which flips a payload byte): flipping the
  // first size digit out of the digit range proves the unseal path
  // rejects structural damage, not just checksum damage.
  if (faultSiteFires(FaultArtifactSealGarble))
    Out[std::strlen(ArtifactSealMagic) + 1] ^= 0x20;
  return Out;
}

Expected<std::string> mco::unsealArtifact(const std::string &Sealed) {
  // Header: "MCOA1 <payload-size-decimal> <crc32c-8hex>\n".
  BinReader R(Sealed);
  std::string Magic = std::string(ArtifactSealMagic) + " ";
  R.literal(Magic.data(), Magic.size());
  uint64_t Size = R.decimalU64("size field");
  R.skipChar(' ', "header");
  uint32_t Crc = R.hexU32(8, "checksum field");
  R.skipChar('\n', "header");
  if (R.fail())
    return R.status("sealed artifact");
  if (R.remaining() != Size)
    return MCO_CORRUPT("sealed artifact: size mismatch (header says " +
                       std::to_string(Size) + ", have " +
                       std::to_string(R.remaining()) + ")");
  std::string Payload = R.rest();
  uint32_t Got = Crc32c::of(Payload);
  if (Got != Crc) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "sealed artifact: checksum mismatch (header %08x, "
                  "payload %08x)",
                  Crc, Got);
    return MCO_CORRUPT(std::string(Buf));
  }
  return Payload;
}
