//===- support/Checksum.cpp - Streaming digests & sealed artifacts --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"

#include <array>
#include <cstdio>
#include <cstdlib>

using namespace mco;

namespace {

/// Byte-at-a-time CRC32C table for the reflected polynomial 0x82F63B78.
const std::array<uint32_t, 256> &crcTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (C >> 1) ^ 0x82F63B78u : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace

void Crc32c::update(const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  const std::array<uint32_t, 256> &T = crcTable();
  uint32_t C = State;
  for (size_t I = 0; I < Len; ++I)
    C = T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  State = C;
}

std::string mco::sealArtifact(const std::string &Payload) {
  char Header[64];
  std::snprintf(Header, sizeof(Header), "%s %zu %08x\n", ArtifactSealMagic,
                Payload.size(), Crc32c::of(Payload));
  std::string Out(Header);
  Out += Payload;
  return Out;
}

Expected<std::string> mco::unsealArtifact(const std::string &Sealed) {
  const std::string Magic = std::string(ArtifactSealMagic) + " ";
  if (Sealed.rfind(Magic, 0) != 0)
    return MCO_ERROR("sealed artifact: bad magic");
  size_t Eol = Sealed.find('\n');
  if (Eol == std::string::npos)
    return MCO_ERROR("sealed artifact: truncated header");
  // "<size> <crc>"
  const char *P = Sealed.c_str() + Magic.size();
  char *End = nullptr;
  unsigned long long Size = std::strtoull(P, &End, 10);
  if (End == P || *End != ' ')
    return MCO_ERROR("sealed artifact: malformed size field");
  unsigned long long Crc = std::strtoull(End + 1, &End, 16);
  if (static_cast<size_t>(End - Sealed.c_str()) != Eol)
    return MCO_ERROR("sealed artifact: malformed checksum field");
  std::string Payload = Sealed.substr(Eol + 1);
  if (Payload.size() != Size)
    return MCO_ERROR("sealed artifact: size mismatch (header says " +
                     std::to_string(Size) + ", have " +
                     std::to_string(Payload.size()) + ")");
  uint32_t Got = Crc32c::of(Payload);
  if (Got != static_cast<uint32_t>(Crc)) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "sealed artifact: checksum mismatch (header %08llx, "
                  "payload %08x)",
                  Crc, Got);
    return MCO_ERROR(std::string(Buf));
  }
  return Payload;
}
