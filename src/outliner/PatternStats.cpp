//===- outliner/PatternStats.cpp - Section IV binary analysis ------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/PatternStats.h"

#include "outliner/InstructionMapper.h"
#include "mir/MIRPrinter.h"
#include "support/FileAtomics.h"
#include "support/SuffixTree.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace mco;

std::vector<int64_t> PatternAnalysis::cumulativeSavingsBestFirst() const {
  std::vector<int64_t> Savings;
  Savings.reserve(Patterns.size());
  for (const PatternRecord &P : Patterns)
    Savings.push_back(P.ByteSaving);
  std::sort(Savings.begin(), Savings.end(), std::greater<int64_t>());
  int64_t Sum = 0;
  for (int64_t &S : Savings) {
    Sum += S;
    S = Sum;
  }
  return Savings;
}

unsigned PatternAnalysis::patternsForShareOfSavings(double Share) const {
  std::vector<int64_t> Cum = cumulativeSavingsBestFirst();
  if (Cum.empty())
    return 0;
  const double Target = Share * double(Cum.back());
  for (unsigned I = 0; I < Cum.size(); ++I)
    if (double(Cum[I]) >= Target)
      return I + 1;
  return static_cast<unsigned>(Cum.size());
}

PatternAnalysis mco::analyzePatterns(const Program &Prog, const Module &M,
                                     const OutlinerOptions &Opts,
                                     unsigned MaxListings) {
  PatternAnalysis A;
  A.TotalInstrs = M.numInstrs();

  InstructionMapper Mapper(M);
  SuffixTree Tree(Mapper.string(), Opts.LeafDescendants);
  std::vector<RepeatedSubstring> Repeats =
      Tree.repeatedSubstrings(Opts.MinLength);

  for (const RepeatedSubstring &RS : Repeats) {
    // Non-overlapping occurrences.
    std::vector<unsigned> Starts;
    unsigned PrevEnd = 0;
    bool First = true;
    for (unsigned Start : RS.StartIndices) {
      if (!First && Start < PrevEnd)
        continue;
      PrevEnd = Start + RS.Length;
      First = false;
      Starts.push_back(Start);
    }
    const uint64_t Freq = Starts.size();
    if (Freq < 2)
      continue;

    const unsigned FirstStart = Starts.front();
    const InstructionMapper::Location &Loc = Mapper.location(FirstStart);
    const auto &Instrs = M.Functions[Loc.Func].Blocks[Loc.Block].Instrs;

    PatternRecord P;
    P.Frequency = Freq;
    P.Length = RS.Length;
    P.Hash = hashPattern(std::vector<MachineInstr>(
        Instrs.begin() + Loc.Instr, Instrs.begin() + Loc.Instr + RS.Length));

    // Provenance: which module/function each occurrence lives in. Keyed
    // by (origin-module index, function name) — the origin index survives
    // the whole-program merge even though module names do not.
    std::map<std::pair<uint32_t, std::string>, uint64_t> ByOrigin;
    for (unsigned Start : Starts) {
      const InstructionMapper::Location &L = Mapper.location(Start);
      const MachineFunction &MF = M.Functions[L.Func];
      ++ByOrigin[{MF.OriginModule, Prog.symbolName(MF.Name)}];
    }
    P.Origins.reserve(ByOrigin.size());
    for (const auto &[Key, Count] : ByOrigin)
      P.Origins.push_back(PatternOrigin{Key.first, Key.second, Count});
    const MachineInstr &Last = Instrs[Loc.Instr + RS.Length - 1];
    P.EndsWithCall = Last.isCall();
    P.EndsWithReturn = Last.isReturn();

    // The paper's profitability bar: at least one byte saved if this
    // pattern alone were outlined across the binary. Approximate the call
    // overhead with the cheap 4-byte call and the frame with an appended
    // RET unless the ending makes it free.
    const int64_t SeqBytes = int64_t(RS.Length) * InstrBytes;
    const int64_t Frame =
        (P.EndsWithCall || P.EndsWithReturn) ? 0 : InstrBytes;
    P.ByteSaving =
        SeqBytes * int64_t(Freq) - (4 * int64_t(Freq) + SeqBytes + Frame);
    if (P.ByteSaving < 1)
      continue;

    A.Patterns.push_back(std::move(P));
    A.TotalCandidates += Freq;
    if (A.Patterns.back().EndsWithCall || A.Patterns.back().EndsWithReturn)
      A.CallOrRetEndingCandidates += Freq;

    // Remember where the pattern lives so we can render it after ranking.
    A.Patterns.back().Text =
        std::to_string(Loc.Func) + ":" + std::to_string(Loc.Block) + ":" +
        std::to_string(Loc.Instr);
  }

  // Rank by frequency; ties broken by longer-first then text for
  // determinism.
  std::sort(A.Patterns.begin(), A.Patterns.end(),
            [](const PatternRecord &X, const PatternRecord &Y) {
              if (X.Frequency != Y.Frequency)
                return X.Frequency > Y.Frequency;
              if (X.Length != Y.Length)
                return X.Length > Y.Length;
              return X.Text < Y.Text;
            });
  for (unsigned I = 0; I < A.Patterns.size(); ++I)
    A.Patterns[I].Rank = I + 1;

  // Render the top patterns' instruction text (paper Listings 1-8).
  for (unsigned I = 0; I < A.Patterns.size(); ++I) {
    PatternRecord &P = A.Patterns[I];
    if (I >= MaxListings) {
      P.Text.clear();
      continue;
    }
    // Decode the stored location.
    unsigned F = 0, B = 0, Ins = 0;
    if (sscanf(P.Text.c_str(), "%u:%u:%u", &F, &B, &Ins) == 3) {
      std::string Text;
      const auto &Instrs = M.Functions[F].Blocks[B].Instrs;
      for (unsigned K = 0; K < P.Length; ++K) {
        Text += printInstr(Instrs[Ins + K], Prog);
        Text += '\n';
      }
      P.Text = std::move(Text);
    }
  }
  return A;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    if (Ch == '\n') {
      Out += "\\n";
      continue;
    }
    Out += Ch;
  }
  return Out;
}

} // namespace

std::string
mco::patternProvenanceJson(const PatternAnalysis &A,
                           const std::vector<std::string> &ModuleNames) {
  auto NameOf = [&](uint32_t Idx) {
    return Idx < ModuleNames.size() ? ModuleNames[Idx]
                                    : "module_" + std::to_string(Idx);
  };
  char Buf[32];
  std::string Out = "{\n";
  Out += "  \"schema\": \"mco-pattern-provenance-v1\",\n";
  Out += "  \"total_instrs\": " + std::to_string(A.TotalInstrs) + ",\n";
  Out += "  \"total_candidates\": " + std::to_string(A.TotalCandidates) +
         ",\n";
  Out += "  \"patterns\": [\n";
  for (size_t I = 0; I < A.Patterns.size(); ++I) {
    const PatternRecord &P = A.Patterns[I];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(P.Hash));
    Out += "    {\"rank\": " + std::to_string(P.Rank) + ", \"hash\": \"" +
           Buf + "\", \"frequency\": " + std::to_string(P.Frequency) +
           ", \"length\": " + std::to_string(P.Length) +
           ", \"byte_saving\": " + std::to_string(P.ByteSaving) +
           ", \"ends_with_call\": " + (P.EndsWithCall ? "true" : "false") +
           ", \"ends_with_return\": " +
           (P.EndsWithReturn ? "true" : "false") + ",\n";
    Out += "     \"origins\": [";
    for (size_t J = 0; J < P.Origins.size(); ++J) {
      const PatternOrigin &O = P.Origins[J];
      Out += (J ? ", " : "") +
             ("{\"module\": \"" + jsonEscape(NameOf(O.ModuleIdx)) +
              "\", \"function\": \"" + jsonEscape(O.Function) +
              "\", \"occurrences\": " + std::to_string(O.Occurrences) + "}");
    }
    Out += "]}";
    Out += I + 1 < A.Patterns.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

Status
mco::writePatternProvenance(const PatternAnalysis &A,
                            const std::vector<std::string> &ModuleNames,
                            const std::string &Path) {
  return atomicWriteFile(Path, patternProvenanceJson(A, ModuleNames));
}
