//===- outliner/InstructionMapper.h - Program -> integer string -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps every machine instruction of a module to an unsigned integer so the
/// suffix tree can find repeated sequences. Structurally identical *legal*
/// instructions map to the same integer; every *illegal* instruction and
/// every basic-block boundary receives a fresh unique integer, which
/// guarantees no repeated substring ever crosses an illegal instruction or a
/// block boundary. This is exactly LLVM MachineOutliner's mapping scheme.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_INSTRUCTIONMAPPER_H
#define MCO_OUTLINER_INSTRUCTIONMAPPER_H

#include "mir/Program.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mco {

/// Why an instruction may not participate in outlining.
enum class OutliningLegality : uint8_t {
  Legal,
  /// Branches and other position-dependent control flow.
  IllegalBranch,
  /// Explicit reads/writes of the link register: outlining would corrupt
  /// the return address handling.
  IllegalUsesLR,
  /// NOP and friends carry no size benefit.
  IllegalOther,
};

/// Classifies \p MI for the outliner.
OutliningLegality classifyInstr(const MachineInstr &MI);

/// The mapped view of a module.
///
/// Supports two usage styles:
///  - one-shot: `InstructionMapper Mapper(M)` maps every function, with
///    legal ids assigned in first-appearance order starting from zero;
///  - incremental: default-construct once, then call `update(M, Dirty)`
///    each round. Functions marked dirty (and any function beyond the
///    dirty vector — i.e. newly appended ones) are remapped; untouched
///    functions reuse their cached per-function segment. Ids are stable
///    across updates: unchanged instructions keep their ids, so the
///    equality structure of the concatenated string — the only thing the
///    suffix tree and the plan selection observe — matches a fresh
///    mapping exactly.
class InstructionMapper {
public:
  /// Where a string index came from.
  struct Location {
    uint32_t Func = 0;
    uint32_t Block = 0;
    uint32_t Instr = 0;
    /// False for synthetic block terminators and illegal markers that the
    /// outliner must never touch.
    bool IsLegal = false;
  };

  /// Empty mapper for incremental use; call update().
  InstructionMapper() = default;

  /// Builds the mapping for every function in \p M.
  explicit InstructionMapper(const Module &M) { update(M, {}); }

  /// Remaps every function F with Dirty[F] true, plus every function at
  /// index >= Dirty.size() (an empty vector remaps everything), then
  /// rebuilds the concatenated string. Segments of clean functions are
  /// reused verbatim — this is the round-over-round mapping reuse.
  void update(const Module &M, const std::vector<bool> &Dirty);

  /// The integer string fed to the suffix tree.
  const std::vector<unsigned> &string() const { return UnsignedString; }

  /// \returns the provenance of string index \p Idx.
  const Location &location(unsigned Idx) const { return Locations[Idx]; }

  /// \returns the number of distinct legal instruction ids.
  unsigned numLegalIds() const { return NextLegalId; }

  /// \returns how many functions the last update() (re)mapped.
  uint64_t functionsRemapped() const { return NumRemapped; }

private:
  /// One function's slice of the mapped string, cached across updates.
  struct FuncSegment {
    std::vector<unsigned> Ids;
    std::vector<Location> Locs;
  };

  void mapFunction(const Module &M, uint32_t F);

  struct InstrKey {
    MachineInstr MI;
    bool operator==(const InstrKey &O) const { return MI == O.MI; }
  };
  struct InstrKeyHash {
    size_t operator()(const InstrKey &K) const {
      return static_cast<size_t>(K.MI.hash());
    }
  };

  std::vector<unsigned> UnsignedString;
  std::vector<Location> Locations;
  std::vector<FuncSegment> Segments;
  std::unordered_map<InstrKey, unsigned, InstrKeyHash> LegalIds;
  unsigned NextLegalId = 0;
  unsigned NextIllegalId = 0xFFFFFFF0u;
  uint64_t NumRemapped = 0;
};

} // namespace mco

#endif // MCO_OUTLINER_INSTRUCTIONMAPPER_H
