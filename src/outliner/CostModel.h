//===- outliner/CostModel.h - AArch64 outlining cost model ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target cost model that drives outlining decisions, mirroring
/// AArch64's MachineOutliner hooks. Each candidate occurrence is assigned a
/// *call variant* describing how control transfers into the outlined
/// function and what it costs at the call site; the outlined function itself
/// pays a *frame* cost. All costs are in bytes (4 per instruction).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_COSTMODEL_H
#define MCO_OUTLINER_COSTMODEL_H

#include "mir/Register.h"

#include <cstdint>

namespace mco {

/// How a particular occurrence calls its outlined function.
enum class CallVariant : uint8_t {
  /// Sequence ended in RET: replace with a plain branch; the outlined
  /// function returns on the program's behalf. 4 bytes.
  TailCall,
  /// Sequence ended in a (single) call: BL to the outlined function, whose
  /// final call becomes a tail call. 4 bytes.
  Thunk,
  /// LR is dead across the occurrence: a bare BL suffices. 4 bytes.
  NoLRSave,
  /// LR is live: stash it in a free scratch register around the BL.
  /// MOV xN, lr; BL; MOV lr, xN = 12 bytes.
  RegSave,
  /// LR is live and no scratch register is free: spill LR to the stack.
  /// STR lr, [sp, #-16]!; BL; LDR lr, [sp], #16 = 12 bytes. Only legal for
  /// sequences that never touch SP (the spill shifts every SP offset).
  SaveLRToStack,
  /// The sequence contains interior calls that clobber LR, so the outlined
  /// function must save/restore LR in its own frame; the call site is a
  /// bare BL. Call site 4 bytes, frame 12 bytes.
  FrameSavesLR,
};

/// \returns the bytes the call site costs under \p V.
inline unsigned callOverheadBytes(CallVariant V) {
  switch (V) {
  case CallVariant::TailCall:
  case CallVariant::Thunk:
  case CallVariant::NoLRSave:
  case CallVariant::FrameSavesLR:
    return 4;
  case CallVariant::RegSave:
  case CallVariant::SaveLRToStack:
    return 12;
  }
  return 12;
}

/// \returns the extra bytes the outlined function's frame costs under \p V
/// (beyond the sequence itself).
inline unsigned frameOverheadBytes(CallVariant V) {
  switch (V) {
  case CallVariant::TailCall: // Sequence keeps its original RET.
  case CallVariant::Thunk:    // Final BL becomes a same-size tail branch.
    return 0;
  case CallVariant::NoLRSave:
  case CallVariant::RegSave:
  case CallVariant::SaveLRToStack:
    return 4; // Appended RET.
  case CallVariant::FrameSavesLR:
    return 12; // STR lr,[sp,#-16]!; ...; LDR lr,[sp],#16; RET.
  }
  return 12;
}

/// The scratch registers eligible to hold LR for RegSave call sites
/// (caller-saved temporaries; x8 and x16-x18 are reserved by convention).
inline RegMask regSaveCandidateMask() {
  RegMask M = 0;
  for (unsigned I = 9; I <= 15; ++I)
    M |= regBit(xreg(I));
  return M;
}

} // namespace mco

#endif // MCO_OUTLINER_COSTMODEL_H
