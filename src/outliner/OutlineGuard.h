//===- outliner/OutlineGuard.h - Guarded outlining rounds -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs outlining rounds under a verify-and-rollback transaction. After
/// every round the guard structurally verifies the round's new functions
/// and every function it edited, checks that each outlined body is
/// byte-for-byte the sequence it replaced (the only detector for a mapper
/// hash collision, which produces structurally valid but semantically
/// wrong code), and optionally executes a deterministic sample of
/// functions before and after the round in a sandboxed interpreter,
/// comparing outcomes. On any failure the module is rolled back to its
/// pre-round state, the offending pattern hashes are quarantined so the
/// retry cannot re-commit them, and the round is retried a bounded number
/// of times before degrading to a no-op round.
///
/// With no faults injected, a guarded build commits exactly what an
/// unguarded build commits: every round passes verification on the first
/// attempt and the guard never perturbs the engine's decisions.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_OUTLINEGUARD_H
#define MCO_OUTLINER_OUTLINEGUARD_H

#include "outliner/MachineOutliner.h"

#include <string>
#include <vector>

namespace mco {

/// Knobs for guarded outlining.
struct GuardOptions {
  /// Master switch, consumed by the build pipeline (the guard class itself
  /// is always active once constructed).
  bool Enabled = false;
  /// Failed attempts are retried (with the failing patterns quarantined)
  /// up to this many times; after that the round degrades to a no-op.
  unsigned MaxRetriesPerRound = 2;
  /// When nonzero, this many functions are executed in a sandboxed
  /// interpreter before and after every round and their outcomes compared
  /// (--verify-exec=N). 0 disables differential execution.
  unsigned VerifyExecSamples = 0;
  /// Seed for the deterministic sample selection.
  uint64_t VerifyExecSeed = 0x9E3779B97F4A7C15ull;
  /// Instruction budget per sampled call; exhaustion is an outcome (both
  /// sides must agree), not a process abort.
  uint64_t VerifyExecFuel = 250'000;
  /// Forwarded to the verifier: accept placeholder symbol ids from a live
  /// DeferredSymbolBatch (per-module fan-out).
  bool AllowPlaceholderSymbols = false;
  /// Pattern hashes quarantined before the first round runs (a resumed or
  /// retried build replaying an earlier attempt's quarantine decisions).
  std::vector<uint64_t> InitialQuarantine;
};

/// Outcome of one guarded round.
struct GuardRoundResult {
  OutlineRoundStats Stats;
  /// True when every attempt failed and the round committed nothing; the
  /// stats then describe an empty round (sizes unchanged) whose
  /// RoundsRolledBack counts the failed attempts.
  bool Skipped = false;
};

/// Wraps an OutlinerEngine with per-round verify + rollback + quarantine.
/// \p Prog is the shared program (symbol names for diagnostics and the
/// sandbox); \p Syms is the interner the engine should use — the Program
/// itself, or a DeferredSymbolBatch during per-module fan-out.
class OutlineGuard {
public:
  OutlineGuard(const Program &Prog, SymbolInterner &Syms, Module &M,
               const OutlinerOptions &OOpts, const GuardOptions &GOpts);

  /// Runs round \p Round with up to MaxRetriesPerRound retries.
  GuardRoundResult runGuardedRound(unsigned Round);

  /// Runs up to \p MaxRounds guarded rounds, stopping early when a round
  /// commits cleanly but creates no functions (a skipped round does not
  /// stop the run — its quarantine may let the next round succeed).
  RepeatedOutlineStats runGuardedRepeated(unsigned MaxRounds);

  /// Human-readable record of every failed attempt.
  const std::vector<std::string> &failureLog() const { return Failures; }
  size_t numQuarantinedPatterns() const {
    return Engine.numQuarantinedPatterns();
  }
  uint64_t totalRoundsRolledBack() const { return TotalRolledBack; }

private:
  /// Verifies the last committed round (structure + edit integrity).
  /// \returns "" on success; otherwise quarantines the offending pattern
  /// hashes and returns a description.
  std::string verifyLastRound();
  /// Deterministically picks up to VerifyExecSamples callable functions.
  std::vector<std::string> pickSamples(unsigned Round) const;
  /// Executes \p Samples in a fresh sandboxed interpreter; one outcome
  /// string per sample (return value or fault message).
  std::vector<std::string> runSamples(
      const std::vector<std::string> &Samples) const;
  void recordFailure(unsigned Round, unsigned Attempt,
                     const std::string &Why);

  const Program &Prog;
  Module &M;
  GuardOptions GOpts;
  OutlinerEngine Engine;
  std::vector<std::string> Failures;
  uint64_t TotalRolledBack = 0;
};

} // namespace mco

#endif // MCO_OUTLINER_OUTLINEGUARD_H
