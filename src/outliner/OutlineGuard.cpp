//===- outliner/OutlineGuard.cpp - Guarded outlining rounds ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/OutlineGuard.h"

#include "linker/Linker.h"
#include "mir/MIRVerifier.h"
#include "sim/Interpreter.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include <algorithm>
#include <cassert>
#include <exception>

using namespace mco;

namespace {

uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// Checks that outlined function \p MF's body is exactly the original
/// sequence \p Seq it was created from, modulo the frame its kind adds.
/// A mapper hash collision outlines occurrences with *different* content
/// into one function; the structural verifier cannot see that, but the
/// pre-edit snapshot can.
bool bodyMatchesSequence(const MachineFunction &MF,
                         const std::vector<MachineInstr> &Seq) {
  if (MF.Blocks.empty())
    return false;
  const std::vector<MachineInstr> &Body = MF.Blocks.front().Instrs;
  const size_t Len = Seq.size();
  switch (MF.FrameKind) {
  case OutlinedFrameKind::TailCall:
    // Body is the sequence verbatim (it ends with the original RET).
    if (Body.size() != Len)
      return false;
    for (size_t I = 0; I < Len; ++I)
      if (!(Body[I] == Seq[I]))
        return false;
    return true;
  case OutlinedFrameKind::AppendedRet:
    // Body is the sequence plus an appended RET.
    if (Body.size() != Len + 1 || !Body.back().isReturn())
      return false;
    for (size_t I = 0; I < Len; ++I)
      if (!(Body[I] == Seq[I]))
        return false;
    return true;
  case OutlinedFrameKind::Thunk:
    // Body is the sequence with its final BL turned into a tail call.
    if (Body.size() != Len || Len == 0)
      return false;
    for (size_t I = 0; I + 1 < Len; ++I)
      if (!(Body[I] == Seq[I]))
        return false;
    return Seq.back().opcode() == Opcode::BL &&
           Body.back().opcode() == Opcode::Btail &&
           Body.back().operand(0).getSym() == Seq.back().operand(0).getSym();
  case OutlinedFrameKind::SavesLRInFrame:
    // STRpre [seq] LDRpost RET.
    if (Body.size() != Len + 3)
      return false;
    for (size_t I = 0; I < Len; ++I)
      if (!(Body[I + 1] == Seq[I]))
        return false;
    return true;
  case OutlinedFrameKind::NotOutlined:
    break;
  }
  return false;
}

} // namespace

OutlineGuard::OutlineGuard(const Program &Prog, SymbolInterner &Syms,
                           Module &M, const OutlinerOptions &OOpts,
                           const GuardOptions &GOpts)
    : Prog(Prog), M(M), GOpts(GOpts), Engine(Syms, M, [&] {
        OutlinerOptions O = OOpts;
        O.Transactional = true; // Rollback needs the round transaction.
        return O;
      }()) {
  // A resumed build replays the quarantine decisions its predecessor made,
  // so the retry produces the same module the crashed build would have.
  for (uint64_t Hash : GOpts.InitialQuarantine)
    Engine.quarantinePattern(Hash);
}

std::string OutlineGuard::verifyLastRound() {
  const RoundTransaction &Txn = Engine.lastTransaction();
  assert(Txn.Valid && "verify without a committed transaction");
  VerifyOptions VOpts;
  VOpts.AllowPlaceholderSymbols = GOpts.AllowPlaceholderSymbols;

  // Structural check of the round's new functions.
  for (size_t F = Txn.FuncCountBefore; F < M.Functions.size(); ++F) {
    std::string Err = verifyFunction(Prog, M.Functions[F], VOpts);
    if (!Err.empty()) {
      Engine.quarantinePattern(Txn.PatternHashes[F - Txn.FuncCountBefore]);
      return "new outlined function is invalid: " + Err;
    }
  }

  // Structural check of every function the round edited. A corrupt
  // call-site rewrite shows up here (e.g. a branch out of block range).
  for (const auto &[Idx, Saved] : Txn.SavedFunctions) {
    (void)Saved;
    std::string Err = verifyFunction(Prog, M.Functions[Idx], VOpts);
    if (!Err.empty()) {
      // Any of the patterns whose call sites landed in this function may
      // be the culprit; quarantine them all.
      for (const RoundEditRecord &E : Txn.Edits)
        if (E.Func == Idx)
          Engine.quarantinePattern(Txn.PatternHashes[E.NewFuncLocalIdx]);
      return "edited function is invalid: " + Err;
    }
  }

  // Edit integrity: every replaced sequence must be exactly the body of
  // the function its call site now reaches.
  const MachineFunction *SavedMF = nullptr;
  uint32_t SavedIdx = UINT32_MAX;
  for (const RoundEditRecord &E : Txn.Edits) {
    if (E.Func != SavedIdx) {
      SavedMF = nullptr;
      for (const auto &[Idx, Saved] : Txn.SavedFunctions)
        if (Idx == E.Func) {
          SavedMF = &Saved;
          break;
        }
      SavedIdx = E.Func;
    }
    assert(SavedMF && "edit without a pre-edit snapshot");
    const std::vector<MachineInstr> &Orig =
        SavedMF->Blocks[E.Block].Instrs;
    std::vector<MachineInstr> Seq(Orig.begin() + E.InstrStart,
                                  Orig.begin() + E.InstrStart + E.Len);
    const MachineFunction &NewF =
        M.Functions[Txn.FuncCountBefore + E.NewFuncLocalIdx];
    if (!bodyMatchesSequence(NewF, Seq)) {
      Engine.quarantinePattern(Txn.PatternHashes[E.NewFuncLocalIdx]);
      return "outlined body does not match the sequence it replaced "
             "(function " +
             std::to_string(E.Func) + " block " + std::to_string(E.Block) +
             " at " + std::to_string(E.InstrStart) + ")";
    }
  }
  return "";
}

std::vector<std::string>
OutlineGuard::pickSamples(unsigned Round) const {
  // Callable functions with real (interned) names; placeholder-named
  // functions from a live symbol batch cannot be looked up by name.
  std::vector<std::string> Eligible;
  for (const MachineFunction &MF : M.Functions)
    if (MF.Name < Prog.numSymbols())
      Eligible.push_back(Prog.symbolName(MF.Name));
  std::vector<std::string> Samples;
  if (Eligible.empty() || GOpts.VerifyExecSamples == 0)
    return Samples;
  std::vector<bool> Taken(Eligible.size(), false);
  const unsigned Want =
      std::min<unsigned>(GOpts.VerifyExecSamples,
                         static_cast<unsigned>(Eligible.size()));
  for (uint64_t Draw = 0; Samples.size() < Want && Draw < Want * 8ull;
       ++Draw) {
    uint64_t H = splitmix64(GOpts.VerifyExecSeed ^
                            (uint64_t(Round) << 32) ^ Draw);
    size_t Idx = H % Eligible.size();
    if (Taken[Idx])
      continue;
    Taken[Idx] = true;
    Samples.push_back(Eligible[Idx]);
  }
  return Samples;
}

std::vector<std::string> OutlineGuard::runSamples(
    const std::vector<std::string> &Samples) const {
  // A private sandbox: its own symbol pool (copied id-for-id) and a deep
  // copy of the module, so sampling is race-free during parallel
  // per-module fan-out and never perturbs the real build.
  Program Sandbox;
  for (uint32_t I = 0; I < Prog.numSymbols(); ++I)
    Sandbox.internSymbol(Prog.symbolName(I));
  Module &Copy = Sandbox.addModule(M.Name);
  Copy.Functions = M.Functions;
  Copy.Globals = M.Globals;

  BinaryImage Image(Sandbox);
  Interpreter Interp(Image, Sandbox);
  Interp.setFuel(GOpts.VerifyExecFuel);

  static const std::vector<int64_t> Args = {11, 7, 5, 3};
  std::vector<std::string> Outcomes;
  Outcomes.reserve(Samples.size());
  for (const std::string &Fn : Samples) {
    Expected<int64_t> R = Interp.tryCall(Fn, Args);
    if (R.ok())
      Outcomes.push_back("=" + std::to_string(*R));
    else
      Outcomes.push_back("!" + R.status().message());
  }
  return Outcomes;
}

void OutlineGuard::recordFailure(unsigned Round, unsigned Attempt,
                                 const std::string &Why) {
  Failures.push_back("round " + std::to_string(Round) + " attempt " +
                     std::to_string(Attempt) + ": " + Why);
}

GuardRoundResult OutlineGuard::runGuardedRound(unsigned Round) {
  MCO_TRACE_SPAN("guard.round:" + std::to_string(Round), "guard");
  const unsigned MaxAttempts = GOpts.MaxRetriesPerRound + 1;
  uint64_t FailedAttempts = 0;

  std::vector<std::string> Samples, Pre;
  if (GOpts.VerifyExecSamples > 0) {
    Samples = pickSamples(Round);
    Pre = runSamples(Samples);
  }

  for (unsigned Attempt = 1; Attempt <= MaxAttempts; ++Attempt) {
    const size_t FuncCountBefore = M.Functions.size();
    OutlineRoundStats Stats;
    try {
      Stats = Engine.runRound(Round);
    } catch (const OutlineCancelled &) {
      // The watchdog cancelled the module; retrying here would just burn
      // the remaining attempts against a raised flag. Cancellation aborts
      // before the commit phase, so the module is untouched — propagate
      // and let the pipeline's timeout policy decide.
      if (M.Functions.size() > FuncCountBefore)
        M.Functions.resize(FuncCountBefore);
      throw;
    } catch (const std::exception &E) {
      // The throw escaped before the commit phase, so the module bodies
      // are untouched; drop anything appended and rebuild the engine's
      // cross-round state, which may be mid-update.
      if (M.Functions.size() > FuncCountBefore)
        M.Functions.resize(FuncCountBefore);
      Engine.resetIncrementalState();
      recordFailure(Round, Attempt,
                    std::string("round aborted: ") + E.what());
      ++FailedAttempts;
      continue;
    }

    std::string Err = verifyLastRound();
    if (Err.empty() && !Samples.empty()) {
      std::vector<std::string> Post = runSamples(Samples);
      if (Post != Pre) {
        // Execution diverged; without finer attribution, every pattern
        // the round committed is suspect.
        for (uint64_t H : Engine.lastTransaction().PatternHashes)
          Engine.quarantinePattern(H);
        for (size_t I = 0; I < Samples.size(); ++I)
          if (Post[I] != Pre[I]) {
            Err = "differential execution diverged on '" + Samples[I] +
                  "': before [" + Pre[I] + "] after [" + Post[I] + "]";
            break;
          }
      }
    }

    if (Err.empty()) {
      GuardRoundResult R;
      R.Stats = Stats;
      R.Stats.RoundsRolledBack = FailedAttempts;
      TotalRolledBack += FailedAttempts;
      return R;
    }

    Engine.rollbackLastRound();
    MetricsRegistry::global().counter("guard.attempts_rolled_back").add(1);
    recordFailure(Round, Attempt, Err);
    ++FailedAttempts;
  }

  // Every attempt failed: degrade to a no-op round, leaving the module in
  // its verified pre-round state.
  GuardRoundResult R;
  R.Skipped = true;
  R.Stats.CodeSizeBefore = R.Stats.CodeSizeAfter = M.codeSize();
  R.Stats.RoundsRolledBack = FailedAttempts;
  TotalRolledBack += FailedAttempts;
  return R;
}

RepeatedOutlineStats OutlineGuard::runGuardedRepeated(unsigned MaxRounds) {
  RepeatedOutlineStats All;
  for (unsigned Round = 1; Round <= MaxRounds; ++Round) {
    GuardRoundResult R = runGuardedRound(Round);
    All.Rounds.push_back(R.Stats);
    // A skipped round keeps going: its quarantine may unblock the next
    // round. A clean round that found nothing ends the run, as unguarded
    // repeated outlining does.
    if (!R.Skipped && R.Stats.FunctionsCreated == 0)
      break;
  }
  return All;
}
