//===- outliner/MachineOutliner.h - Whole-module outlining ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine outliner: finds repeated instruction sequences via a suffix
/// tree, selects profitable ones greedily (largest immediate byte saving
/// first — the sub-optimal order the paper analyses in Fig. 11), and
/// rewrites the module. `RepeatedOutliner` drives multiple rounds, which is
/// the paper's headline contribution (`-outline-repeat-count=N`).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_MACHINEOUTLINER_H
#define MCO_OUTLINER_MACHINEOUTLINER_H

#include "outliner/CostModel.h"
#include "mir/Program.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mco {

/// Tunable knobs; defaults match stock LLVM + the paper's configuration.
struct OutlinerOptions {
  /// Minimum candidate sequence length in instructions.
  unsigned MinLength = 2;
  /// Collect all leaf descendants per suffix-tree node (ablation; stock
  /// LLVM uses direct leaf children only).
  bool LeafDescendants = false;
  /// Allow the RegSave call variant (ablation).
  bool EnableRegSave = true;
  /// Greedy priority: true = immediate byte benefit (stock LLVM);
  /// false = sequence length (ablation).
  bool SortByBenefit = true;
  /// Prefix for outlined function names. Per-module pipelines qualify this
  /// with the module name so clones from different modules stay distinct
  /// symbols, as the system linker would keep them (paper Section V-A).
  std::string NamePrefix = "OUTLINED_FUNCTION";
  /// Worker threads for the parallel phases (per-function liveness,
  /// per-plan candidate classification). 1 = fully serial. Output is
  /// bit-identical at any setting.
  unsigned Threads = 1;
  /// Reuse the previous round's instruction mapping and per-function
  /// liveness for functions the round left untouched (only functions
  /// edited in round N, plus the round's new outlined functions, are
  /// recomputed in round N+1). Output is bit-identical either way; only
  /// takes effect across rounds driven by one OutlinerEngine (which
  /// runRepeatedOutliner and the build pipeline use).
  bool Incremental = false;
};

/// Statistics for one outlining round (paper Table II rows), plus
/// observability counters explaining why candidates were rejected.
struct OutlineRoundStats {
  /// Candidate occurrences replaced with calls ("# sequences outlined").
  uint64_t SequencesOutlined = 0;
  /// New outlined functions created.
  uint64_t FunctionsCreated = 0;
  /// Bytes of code in the newly created outlined functions.
  uint64_t OutlinedFunctionBytes = 0;
  uint64_t CodeSizeBefore = 0;
  uint64_t CodeSizeAfter = 0;

  // Rejection accounting (per round, not cumulative).
  /// Repeated substrings examined.
  uint64_t PatternsConsidered = 0;
  /// Patterns whose best-case byte benefit was below the threshold.
  uint64_t PatternsUnprofitable = 0;
  /// Occurrences dropped because SP-relative content cannot live under a
  /// stack-shifting call variant.
  uint64_t CandidatesDroppedSP = 0;
  /// Occurrences dropped because a better pattern already consumed their
  /// instructions.
  uint64_t CandidatesDroppedOverlap = 0;

  // Incremental-engine observability (not part of the determinism
  // contract across Incremental settings; identical across thread counts).
  /// Functions whose instruction mapping was (re)computed this round.
  uint64_t FunctionsRemapped = 0;
  /// Functions whose liveness was (re)computed this round.
  uint64_t LivenessComputed = 0;
  /// Distinct pre-existing functions that received edits this round (the
  /// next round's incremental invalidation set, together with
  /// FunctionsCreated).
  uint64_t FunctionsEdited = 0;

  uint64_t bytesSaved() const { return CodeSizeBefore - CodeSizeAfter; }
};

/// Drives outlining rounds over one module. Holds the round-over-round
/// state (instruction mapping, per-function liveness, the edited-function
/// set) that Opts.Incremental reuses, plus the thread pool for the
/// parallel phases. Rounds must be run in increasing order; the module
/// must not be modified between rounds by anyone else.
class OutlinerEngine {
public:
  OutlinerEngine(SymbolInterner &Syms, Module &M,
                 const OutlinerOptions &Opts = {});
  ~OutlinerEngine();

  OutlinerEngine(const OutlinerEngine &) = delete;
  OutlinerEngine &operator=(const OutlinerEngine &) = delete;

  /// Runs one greedy outlining round. \p Round is used in outlined
  /// function names for uniqueness.
  OutlineRoundStats runRound(unsigned Round);

private:
  struct State;
  std::unique_ptr<State> S;
};

/// Runs one greedy outlining round over \p M (all functions, cross-function
/// within the module). New outlined functions are appended to \p M.
/// One-shot convenience wrapper over OutlinerEngine (no cross-round reuse).
///
/// \param Round used in outlined function names for uniqueness.
/// \returns the round's statistics.
OutlineRoundStats runOutlinerRound(SymbolInterner &Syms, Module &M,
                                   unsigned Round,
                                   const OutlinerOptions &Opts = {});

/// Statistics for a full repeated-outlining run.
struct RepeatedOutlineStats {
  std::vector<OutlineRoundStats> Rounds;

  uint64_t totalSequencesOutlined() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.SequencesOutlined;
    return N;
  }
  uint64_t totalFunctionsCreated() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.FunctionsCreated;
    return N;
  }
  uint64_t totalOutlinedFunctionBytes() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.OutlinedFunctionBytes;
    return N;
  }
};

/// Runs up to \p MaxRounds rounds of outlining over \p M, stopping early
/// when a round creates no functions. This is the paper's repeated machine
/// outlining (`-outline-repeat-count`).
RepeatedOutlineStats runRepeatedOutliner(SymbolInterner &Syms, Module &M,
                                         unsigned MaxRounds,
                                         const OutlinerOptions &Opts = {});

} // namespace mco

#endif // MCO_OUTLINER_MACHINEOUTLINER_H
