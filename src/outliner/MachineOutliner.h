//===- outliner/MachineOutliner.h - Whole-module outlining ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine outliner: finds repeated instruction sequences via a suffix
/// tree, selects profitable ones greedily (largest immediate byte saving
/// first — the sub-optimal order the paper analyses in Fig. 11), and
/// rewrites the module. `RepeatedOutliner` drives multiple rounds, which is
/// the paper's headline contribution (`-outline-repeat-count=N`).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_MACHINEOUTLINER_H
#define MCO_OUTLINER_MACHINEOUTLINER_H

#include "outliner/CostModel.h"
#include "mir/Program.h"
#include "sim/HeatProfile.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mco {

/// Thrown by the engine when its OutlinerOptions::CancelFlag is raised.
/// The watchdog's cooperative cancel: the round aborts before committing
/// anything, so the module is exactly as the last completed round left it.
class OutlineCancelled : public std::runtime_error {
public:
  OutlineCancelled() : std::runtime_error("outlining cancelled") {}
};

/// Which engine enumerates repeated instruction sequences. Both report the
/// identical pattern set (a ctest-asserted invariant), so the choice only
/// affects discovery-phase time and memory: the suffix array's flat
/// integer arrays are smaller and scanned sequentially, the tree is kept
/// for comparison and for consumers that walk its structure.
enum class DiscoveryEngine : uint8_t {
  Tree,        ///< Ukkonen suffix tree (support/SuffixTree.h).
  SuffixArray, ///< SA-IS + LCP intervals (support/SuffixArray.h).
};

/// Tunable knobs; defaults match stock LLVM + the paper's configuration.
struct OutlinerOptions {
  /// Minimum candidate sequence length in instructions.
  unsigned MinLength = 2;
  /// Candidate discovery engine. The suffix array is the default (faster
  /// and smaller on large mapped strings); `--discovery tree` restores the
  /// suffix tree.
  DiscoveryEngine Discovery = DiscoveryEngine::SuffixArray;
  /// Collect all leaf descendants per suffix-tree node (ablation; stock
  /// LLVM uses direct leaf children only).
  bool LeafDescendants = false;
  /// Allow the RegSave call variant (ablation).
  bool EnableRegSave = true;
  /// Greedy priority: true = immediate byte benefit (stock LLVM);
  /// false = sequence length (ablation).
  bool SortByBenefit = true;
  /// Prefix for outlined function names. Per-module pipelines qualify this
  /// with the module name so clones from different modules stay distinct
  /// symbols, as the system linker would keep them (paper Section V-A).
  std::string NamePrefix = "OUTLINED_FUNCTION";
  /// Worker threads for the parallel phases (per-function liveness,
  /// per-plan candidate classification). 1 = fully serial. Output is
  /// bit-identical at any setting.
  unsigned Threads = 1;
  /// Reuse the previous round's instruction mapping and per-function
  /// liveness for functions the round left untouched (only functions
  /// edited in round N, plus the round's new outlined functions, are
  /// recomputed in round N+1). Output is bit-identical either way; only
  /// takes effect across rounds driven by one OutlinerEngine (which
  /// runRepeatedOutliner and the build pipeline use).
  bool Incremental = false;
  /// Record a RoundTransaction while running each round (pre-edit
  /// snapshots of edited functions + the edit list), enabling
  /// rollbackLastRound(). Does not change what the round commits.
  /// OutlineGuard turns this on.
  bool Transactional = false;
  /// When set, the engine polls this flag at round boundaries (entry,
  /// before the plan fan-out, before committing edits) and throws
  /// OutlineCancelled when it is true. The watchdog raises it when a
  /// module overruns --module-timeout-ms. Null = never cancelled.
  const std::atomic<bool> *CancelFlag = nullptr;

  // Profile-guided hot/cold outlining (the paper's latency concession:
  // outlining in hot code trades call overhead and i-cache locality for
  // size; see sim/HeatProfile.h).
  /// Master switch. When false the two fields below are ignored and the
  /// round behaves exactly as profile-free outlining.
  bool HeatGuided = false;
  /// HeatClass value per module function index. Out-of-range indices (e.g.
  /// functions appended by later rounds) are Warm. Hot functions never
  /// have occurrences outlined from them; Cold functions outline more
  /// aggressively (RegSave accepted even with EnableRegSave off, and
  /// patterns down to ColdMinLength are considered for occurrences that
  /// live in cold functions).
  std::vector<uint8_t> FunctionHeatClasses;
  /// Discovery floor for cold-function occurrences when HeatGuided. Only
  /// takes effect below MinLength; the default equals the default
  /// MinLength, so heat guidance with stock knobs changes hot handling
  /// only.
  unsigned ColdMinLength = 2;
};

/// One candidate occurrence the heat model refused to outline because its
/// function is Hot. Recorded so size remarks can report exactly which
/// sites the profile suppressed. \p Func is a module-local function index
/// (the pipeline resolves it to a symbol name before remarks are
/// written).
struct HeatSuppressedSite {
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t InstrStart = 0; ///< Within the block.
  uint32_t Len = 0;        ///< Pattern length in instructions.
};

/// Statistics for one outlining round (paper Table II rows), plus
/// observability counters explaining why candidates were rejected.
struct OutlineRoundStats {
  /// Candidate occurrences replaced with calls ("# sequences outlined").
  uint64_t SequencesOutlined = 0;
  /// New outlined functions created.
  uint64_t FunctionsCreated = 0;
  /// Bytes of code in the newly created outlined functions.
  uint64_t OutlinedFunctionBytes = 0;
  uint64_t CodeSizeBefore = 0;
  uint64_t CodeSizeAfter = 0;

  // Rejection accounting (per round, not cumulative).
  /// Repeated substrings examined.
  uint64_t PatternsConsidered = 0;
  /// Patterns whose best-case byte benefit was below the threshold.
  uint64_t PatternsUnprofitable = 0;
  /// Occurrences dropped because SP-relative content cannot live under a
  /// stack-shifting call variant.
  uint64_t CandidatesDroppedSP = 0;
  /// Occurrences dropped because a better pattern already consumed their
  /// instructions.
  uint64_t CandidatesDroppedOverlap = 0;
  /// Occurrences refused because their function is Hot (zero unless
  /// OutlinerOptions::HeatGuided). Counted per pattern occurrence, like
  /// CandidatesDroppedSP.
  uint64_t CandidatesDroppedHot = 0;
  /// The refused sites behind CandidatesDroppedHot, for size remarks. Not
  /// part of the artifact codecs: a cache-hit module replays the scalar
  /// counter but not the per-site detail.
  std::vector<HeatSuppressedSite> HeatSuppressed;

  // Incremental-engine observability (not part of the determinism
  // contract across Incremental settings; identical across thread counts).
  /// Functions whose instruction mapping was (re)computed this round.
  uint64_t FunctionsRemapped = 0;
  /// Functions whose liveness was (re)computed this round.
  uint64_t LivenessComputed = 0;
  /// Distinct pre-existing functions that received edits this round (the
  /// next round's incremental invalidation set, together with
  /// FunctionsCreated).
  uint64_t FunctionsEdited = 0;

  // Guarded-outlining observability (zero unless OutlineGuard is active).
  /// Plans skipped because their pattern hash is quarantined from an
  /// earlier failed attempt.
  uint64_t PatternsQuarantined = 0;
  /// Failed attempts at this round that were rolled back (or aborted
  /// before committing) prior to the attempt these stats describe.
  uint64_t RoundsRolledBack = 0;

  uint64_t bytesSaved() const { return CodeSizeBefore - CodeSizeAfter; }
};

/// One call-site rewrite committed by a round, recorded for rollback and
/// post-round integrity checking.
struct RoundEditRecord {
  uint32_t Func = 0;       ///< Edited function (pre-round index).
  uint32_t Block = 0;
  uint32_t InstrStart = 0; ///< Original sequence start within the block.
  uint32_t Len = 0;        ///< Original sequence length (instructions).
  /// Index of the outlined function this site now calls, relative to the
  /// round's first new function.
  uint32_t NewFuncLocalIdx = 0;
};

/// Everything needed to undo one round and attribute its failures:
/// pre-edit deep copies of the functions the round modified, the edit
/// list, and one content hash per new outlined function's pattern.
struct RoundTransaction {
  bool Valid = false;
  /// Function count before the round appended its outlined functions.
  size_t FuncCountBefore = 0;
  /// (pre-round function index, pre-edit copy), ascending by index.
  std::vector<std::pair<uint32_t, MachineFunction>> SavedFunctions;
  std::vector<RoundEditRecord> Edits;
  /// PatternHashes[i] is the hash of new function i's source sequence.
  std::vector<uint64_t> PatternHashes;
};

/// Content hash of an instruction sequence, used as the quarantine key.
uint64_t hashPattern(const std::vector<MachineInstr> &Seq);

/// Drives outlining rounds over one module. Holds the round-over-round
/// state (instruction mapping, per-function liveness, the edited-function
/// set) that Opts.Incremental reuses, plus the thread pool for the
/// parallel phases. Rounds must be run in increasing order; the module
/// must not be modified between rounds by anyone else.
class OutlinerEngine {
public:
  OutlinerEngine(SymbolInterner &Syms, Module &M,
                 const OutlinerOptions &Opts = {});
  ~OutlinerEngine();

  OutlinerEngine(const OutlinerEngine &) = delete;
  OutlinerEngine &operator=(const OutlinerEngine &) = delete;

  /// Runs one greedy outlining round. \p Round is used in outlined
  /// function names for uniqueness.
  OutlineRoundStats runRound(unsigned Round);

  /// The transaction recorded by the last runRound (Valid only when
  /// Opts.Transactional and a round has run).
  const RoundTransaction &lastTransaction() const;

  /// Undoes the last round: restores the pre-edit function bodies, drops
  /// the round's new functions, and resets the incremental state (the
  /// mapping no longer matches the module). Requires a valid transaction.
  void rollbackLastRound();

  /// Discards the cross-round mapping/liveness state so the next round
  /// recomputes from scratch (used after an aborted round may have left
  /// the mapper inconsistent with the module).
  void resetIncrementalState();

  /// Bans a pattern: later rounds skip plans whose source sequence hashes
  /// to \p PatternHash (counted in OutlineRoundStats::PatternsQuarantined).
  void quarantinePattern(uint64_t PatternHash);
  size_t numQuarantinedPatterns() const;

private:
  struct State;
  std::unique_ptr<State> S;
};

/// Runs one greedy outlining round over \p M (all functions, cross-function
/// within the module). New outlined functions are appended to \p M.
/// One-shot convenience wrapper over OutlinerEngine (no cross-round reuse).
///
/// \param Round used in outlined function names for uniqueness.
/// \returns the round's statistics.
OutlineRoundStats runOutlinerRound(SymbolInterner &Syms, Module &M,
                                   unsigned Round,
                                   const OutlinerOptions &Opts = {});

/// Statistics for a full repeated-outlining run.
struct RepeatedOutlineStats {
  std::vector<OutlineRoundStats> Rounds;

  uint64_t totalSequencesOutlined() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.SequencesOutlined;
    return N;
  }
  uint64_t totalFunctionsCreated() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.FunctionsCreated;
    return N;
  }
  uint64_t totalOutlinedFunctionBytes() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.OutlinedFunctionBytes;
    return N;
  }
};

/// Runs up to \p MaxRounds rounds of outlining over \p M, stopping early
/// when a round creates no functions. This is the paper's repeated machine
/// outlining (`-outline-repeat-count`).
RepeatedOutlineStats runRepeatedOutliner(SymbolInterner &Syms, Module &M,
                                         unsigned MaxRounds,
                                         const OutlinerOptions &Opts = {});

} // namespace mco

#endif // MCO_OUTLINER_MACHINEOUTLINER_H
