//===- outliner/MachineOutliner.h - Whole-module outlining ------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine outliner: finds repeated instruction sequences via a suffix
/// tree, selects profitable ones greedily (largest immediate byte saving
/// first — the sub-optimal order the paper analyses in Fig. 11), and
/// rewrites the module. `RepeatedOutliner` drives multiple rounds, which is
/// the paper's headline contribution (`-outline-repeat-count=N`).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_MACHINEOUTLINER_H
#define MCO_OUTLINER_MACHINEOUTLINER_H

#include "outliner/CostModel.h"
#include "mir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// Tunable knobs; defaults match stock LLVM + the paper's configuration.
struct OutlinerOptions {
  /// Minimum candidate sequence length in instructions.
  unsigned MinLength = 2;
  /// Collect all leaf descendants per suffix-tree node (ablation; stock
  /// LLVM uses direct leaf children only).
  bool LeafDescendants = false;
  /// Allow the RegSave call variant (ablation).
  bool EnableRegSave = true;
  /// Greedy priority: true = immediate byte benefit (stock LLVM);
  /// false = sequence length (ablation).
  bool SortByBenefit = true;
  /// Prefix for outlined function names. Per-module pipelines qualify this
  /// with the module name so clones from different modules stay distinct
  /// symbols, as the system linker would keep them (paper Section V-A).
  std::string NamePrefix = "OUTLINED_FUNCTION";
};

/// Statistics for one outlining round (paper Table II rows), plus
/// observability counters explaining why candidates were rejected.
struct OutlineRoundStats {
  /// Candidate occurrences replaced with calls ("# sequences outlined").
  uint64_t SequencesOutlined = 0;
  /// New outlined functions created.
  uint64_t FunctionsCreated = 0;
  /// Bytes of code in the newly created outlined functions.
  uint64_t OutlinedFunctionBytes = 0;
  uint64_t CodeSizeBefore = 0;
  uint64_t CodeSizeAfter = 0;

  // Rejection accounting (per round, not cumulative).
  /// Repeated substrings examined.
  uint64_t PatternsConsidered = 0;
  /// Patterns whose best-case byte benefit was below the threshold.
  uint64_t PatternsUnprofitable = 0;
  /// Occurrences dropped because SP-relative content cannot live under a
  /// stack-shifting call variant.
  uint64_t CandidatesDroppedSP = 0;
  /// Occurrences dropped because a better pattern already consumed their
  /// instructions.
  uint64_t CandidatesDroppedOverlap = 0;

  uint64_t bytesSaved() const { return CodeSizeBefore - CodeSizeAfter; }
};

/// Runs one greedy outlining round over \p M (all functions, cross-function
/// within the module). New outlined functions are appended to \p M.
///
/// \param Round used in outlined function names for uniqueness.
/// \returns the round's statistics.
OutlineRoundStats runOutlinerRound(Program &Prog, Module &M, unsigned Round,
                                   const OutlinerOptions &Opts = {});

/// Statistics for a full repeated-outlining run.
struct RepeatedOutlineStats {
  std::vector<OutlineRoundStats> Rounds;

  uint64_t totalSequencesOutlined() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.SequencesOutlined;
    return N;
  }
  uint64_t totalFunctionsCreated() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.FunctionsCreated;
    return N;
  }
  uint64_t totalOutlinedFunctionBytes() const {
    uint64_t N = 0;
    for (const OutlineRoundStats &R : Rounds)
      N += R.OutlinedFunctionBytes;
    return N;
  }
};

/// Runs up to \p MaxRounds rounds of outlining over \p M, stopping early
/// when a round creates no functions. This is the paper's repeated machine
/// outlining (`-outline-repeat-count`).
RepeatedOutlineStats runRepeatedOutliner(Program &Prog, Module &M,
                                         unsigned MaxRounds,
                                         const OutlinerOptions &Opts = {});

} // namespace mco

#endif // MCO_OUTLINER_MACHINEOUTLINER_H
