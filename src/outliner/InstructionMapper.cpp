//===- outliner/InstructionMapper.cpp - Program -> integer string --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/InstructionMapper.h"

#include "support/FaultInjection.h"

#include <cassert>

using namespace mco;

OutliningLegality mco::classifyInstr(const MachineInstr &MI) {
  switch (MI.opcode()) {
  case Opcode::B:
  case Opcode::Bcc:
  case Opcode::CBZ:
  case Opcode::CBNZ:
  case Opcode::Btail:
  case Opcode::BR:
  case Opcode::BLR:
    // Position-dependent control flow (block-relative targets) or indirect
    // transfers we cannot prove safe. RET is handled below; BL is legal.
    return OutliningLegality::IllegalBranch;
  case Opcode::NOP:
    return OutliningLegality::IllegalOther;
  case Opcode::RET:
  case Opcode::BL:
    return OutliningLegality::Legal;
  default:
    break;
  }
  // Any explicit mention of the link register is off limits: the outlining
  // call sequence manipulates LR itself (this also keeps later rounds from
  // outlining a RegSave/SaveLRToStack fixup without its call).
  for (unsigned I = 0; I < MI.numOperands(); ++I)
    if (MI.operand(I).isReg() && MI.operand(I).getReg() == LR)
      return OutliningLegality::IllegalUsesLR;
  return OutliningLegality::Legal;
}

void InstructionMapper::mapFunction(const Module &M, uint32_t F) {
  FuncSegment &Seg = Segments[F];
  Seg.Ids.clear();
  Seg.Locs.clear();
  const MachineFunction &MF = M.Functions[F];
  Seg.Ids.reserve(MF.numInstrs() + MF.numBlocks());
  Seg.Locs.reserve(MF.numInstrs() + MF.numBlocks());

  for (uint32_t B = 0, BE = MF.numBlocks(); B != BE; ++B) {
    const MachineBasicBlock &MBB = MF.Blocks[B];
    for (uint32_t I = 0, IE = MBB.size(); I != IE; ++I) {
      const MachineInstr &MI = MBB.Instrs[I];
      Location Loc{F, B, I, /*IsLegal=*/false};
      if (classifyInstr(MI) == OutliningLegality::Legal) {
        Loc.IsLegal = true;
        auto [It, Inserted] = LegalIds.try_emplace(InstrKey{MI}, NextLegalId);
        if (Inserted) {
          if (NextLegalId > 0 && faultSiteFires(FaultMapperHashCollide))
            // Simulated hash collision: this distinct instruction aliases
            // the previous id, so the suffix tree sees bogus "repeats" of
            // non-identical code. Structurally valid, semantically wrong —
            // only the guard's integrity/exec checks can catch it.
            It->second = NextLegalId - 1;
          else
            ++NextLegalId;
        }
        Seg.Ids.push_back(It->second);
      } else {
        assert(NextIllegalId > NextLegalId && "id spaces collided");
        Seg.Ids.push_back(NextIllegalId--);
      }
      Seg.Locs.push_back(Loc);
    }
    // Unique terminator after every block: no candidate spans blocks, and
    // the final element of the whole string is globally unique, which the
    // suffix tree needs for complete occurrence reporting.
    assert(NextIllegalId > NextLegalId && "id spaces collided");
    Seg.Ids.push_back(NextIllegalId--);
    Seg.Locs.push_back(Location{F, B, 0, /*IsLegal=*/false});
  }
}

void InstructionMapper::update(const Module &M,
                               const std::vector<bool> &Dirty) {
  const uint32_t NumFuncs = static_cast<uint32_t>(M.Functions.size());
  assert(Segments.size() <= NumFuncs &&
         "functions are only ever appended, never removed");
  Segments.resize(NumFuncs);

  NumRemapped = 0;
  for (uint32_t F = 0; F != NumFuncs; ++F) {
    if (F < Dirty.size() && !Dirty[F])
      continue;
    mapFunction(M, F);
    ++NumRemapped;
  }

  size_t Total = 0;
  for (const FuncSegment &Seg : Segments)
    Total += Seg.Ids.size();
  UnsignedString.clear();
  Locations.clear();
  UnsignedString.reserve(Total);
  Locations.reserve(Total);
  for (const FuncSegment &Seg : Segments) {
    UnsignedString.insert(UnsignedString.end(), Seg.Ids.begin(),
                          Seg.Ids.end());
    Locations.insert(Locations.end(), Seg.Locs.begin(), Seg.Locs.end());
  }
}
