//===- outliner/InstructionMapper.cpp - Program -> integer string --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "outliner/InstructionMapper.h"

#include <cassert>

using namespace mco;

OutliningLegality mco::classifyInstr(const MachineInstr &MI) {
  switch (MI.opcode()) {
  case Opcode::B:
  case Opcode::Bcc:
  case Opcode::CBZ:
  case Opcode::CBNZ:
  case Opcode::Btail:
  case Opcode::BR:
  case Opcode::BLR:
    // Position-dependent control flow (block-relative targets) or indirect
    // transfers we cannot prove safe. RET is handled below; BL is legal.
    return OutliningLegality::IllegalBranch;
  case Opcode::NOP:
    return OutliningLegality::IllegalOther;
  case Opcode::RET:
  case Opcode::BL:
    return OutliningLegality::Legal;
  default:
    break;
  }
  // Any explicit mention of the link register is off limits: the outlining
  // call sequence manipulates LR itself (this also keeps later rounds from
  // outlining a RegSave/SaveLRToStack fixup without its call).
  for (unsigned I = 0; I < MI.numOperands(); ++I)
    if (MI.operand(I).isReg() && MI.operand(I).getReg() == LR)
      return OutliningLegality::IllegalUsesLR;
  return OutliningLegality::Legal;
}

InstructionMapper::InstructionMapper(const Module &M) {
  uint64_t Total = M.numInstrs();
  UnsignedString.reserve(Total + Total / 8);
  Locations.reserve(Total + Total / 8);

  for (uint32_t F = 0, FE = static_cast<uint32_t>(M.Functions.size()); F != FE;
       ++F) {
    const MachineFunction &MF = M.Functions[F];
    for (uint32_t B = 0, BE = MF.numBlocks(); B != BE; ++B) {
      const MachineBasicBlock &MBB = MF.Blocks[B];
      for (uint32_t I = 0, IE = MBB.size(); I != IE; ++I) {
        const MachineInstr &MI = MBB.Instrs[I];
        Location Loc{F, B, I, /*IsLegal=*/false};
        if (classifyInstr(MI) == OutliningLegality::Legal) {
          Loc.IsLegal = true;
          auto [It, Inserted] = LegalIds.try_emplace(InstrKey{MI}, NextLegalId);
          if (Inserted)
            ++NextLegalId;
          UnsignedString.push_back(It->second);
        } else {
          assert(NextIllegalId > NextLegalId && "id spaces collided");
          UnsignedString.push_back(NextIllegalId--);
        }
        Locations.push_back(Loc);
      }
      // Unique terminator after every block: no candidate spans blocks, and
      // the final element of the whole string is globally unique, which the
      // suffix tree needs for complete occurrence reporting.
      assert(NextIllegalId > NextLegalId && "id spaces collided");
      UnsignedString.push_back(NextIllegalId--);
      Locations.push_back(Location{F, B, 0, /*IsLegal=*/false});
    }
  }
}
