//===- outliner/PatternStats.h - Section IV binary analysis -----*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistics-collection pass the paper inserts after machine-code
/// generation (Section IV): it logs every repeated machine-code pattern
/// meeting the one-byte-saving profitability bar, together with its
/// repetition frequency, length, and how it ends. This feeds Figures 5-8.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OUTLINER_PATTERNSTATS_H
#define MCO_OUTLINER_PATTERNSTATS_H

#include "outliner/MachineOutliner.h"
#include "mir/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// Where (part of) a pattern's occurrences come from: one originating
/// function, identified by name plus the index of the module that emitted
/// it (MachineFunction::OriginModule — the linker destroys module names
/// but preserves the index, so provenance survives a whole-program merge).
struct PatternOrigin {
  uint32_t ModuleIdx = 0;
  std::string Function;
  uint64_t Occurrences = 0;
};

/// One profitable repeated pattern.
struct PatternRecord {
  /// 1-based rank by repetition frequency (rank 1 repeats the most).
  unsigned Rank = 0;
  /// Stable content hash of the instruction sequence (hashPattern — the
  /// same hash the guard's quarantine uses).
  uint64_t Hash = 0;
  /// Number of non-overlapping occurrences ("candidates").
  uint64_t Frequency = 0;
  /// Sequence length in instructions.
  unsigned Length = 0;
  /// Bytes saved if this pattern alone were outlined.
  int64_t ByteSaving = 0;
  /// Whether the sequence ends in a call or a return (the paper finds 67%
  /// of profitable candidates do).
  bool EndsWithCall = false;
  bool EndsWithReturn = false;
  /// Originating functions, sorted by (module, function); the occurrence
  /// counts sum to Frequency.
  std::vector<PatternOrigin> Origins;
  /// Rendered text of the pattern (for listing output).
  std::string Text;
};

/// Full analysis of a module's repeated machine-code patterns.
struct PatternAnalysis {
  /// Profitable patterns, sorted by Frequency descending (rank order).
  std::vector<PatternRecord> Patterns;
  uint64_t TotalInstrs = 0;
  /// Total candidates over all profitable patterns.
  uint64_t TotalCandidates = 0;
  /// Candidates whose pattern ends with a call or return.
  uint64_t CallOrRetEndingCandidates = 0;

  /// \returns the fraction of profitable candidates ending in call/ret.
  double callRetEndingShare() const {
    return TotalCandidates == 0
               ? 0.0
               : double(CallOrRetEndingCandidates) / double(TotalCandidates);
  }

  /// Cumulative byte savings when outlining patterns in best-first order
  /// (Fig. 7): element K = saving from the K+1 most profitable patterns.
  std::vector<int64_t> cumulativeSavingsBestFirst() const;

  /// \returns the number of patterns needed to reach \p Share (e.g. 0.9)
  /// of the total achievable saving (paper: >100 patterns for >90%).
  unsigned patternsForShareOfSavings(double Share) const;
};

/// Runs the analysis over \p M. \p MaxListings bounds how many pattern
/// texts are rendered (rendering all is wasteful for large corpora).
PatternAnalysis analyzePatterns(const Program &Prog, const Module &M,
                                const OutlinerOptions &Opts = {},
                                unsigned MaxListings = 16);

/// Deterministic JSON provenance report: every profitable pattern's hash,
/// frequency, length, byte saving, and originating modules/functions.
/// \p ModuleNames maps PatternOrigin::ModuleIdx to a module name — capture
/// Program module names *before* building, since the whole-program merge
/// destroys them; indices without a name render as "module_<idx>".
std::string patternProvenanceJson(const PatternAnalysis &A,
                                  const std::vector<std::string> &ModuleNames);

/// Atomically writes patternProvenanceJson to \p Path (FileAtomics
/// write-temp + rename, SIGKILL-safe).
Status writePatternProvenance(const PatternAnalysis &A,
                              const std::vector<std::string> &ModuleNames,
                              const std::string &Path);

} // namespace mco

#endif // MCO_OUTLINER_PATTERNSTATS_H
