//===- outliner/MachineOutliner.cpp - Whole-module outlining -------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
//
// Determinism contract for the parallel/incremental engine:
//
//  * The discovery engines' repeated-substring *set* depends only on the
//    equality structure of the mapped string, never on the id values; ids
//    only steer traversal (= enumeration) order. The suffix tree and the
//    suffix array report the same set (differential-tested), so the engine
//    choice does not change the output either.
//  * The plan sort comparator is a strict total order on distinct plans
//    (Benefit desc, Len desc, FirstStart asc — two distinct same-length
//    patterns cannot share a first start index), so the committed plan order
//    is unique regardless of enumeration order.
//  * Parallel phases write results into index-owned slots of pre-sized
//    vectors; stats are order-independent sums.
//
// Together these make the output bit-identical for any thread count and for
// incremental mapping reuse (which preserves the equality structure but may
// assign different id values than a fresh mapping).
//
//===----------------------------------------------------------------------===//

#include "outliner/MachineOutliner.h"

#include "outliner/InstructionMapper.h"
#include "mir/Liveness.h"
#include "support/FaultInjection.h"
#include "support/SuffixArray.h"
#include "support/SuffixTree.h"
#include "support/ThreadPool.h"
#include "telemetry/Metrics.h"
#include "telemetry/Tracer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_set>

using namespace mco;

namespace {

/// One occurrence of a pattern, with its call strategy.
struct Candidate {
  unsigned StartIdx = 0; ///< Into the mapped string.
  unsigned Len = 0;
  uint32_t Func = 0;
  uint32_t Block = 0;
  uint32_t InstrStart = 0;
  CallVariant Variant = CallVariant::NoLRSave;
  Reg SaveReg = Reg::None;
};

/// What kind of body the outlined function needs; determined entirely by
/// the pattern (all occurrences share the instruction sequence).
enum class BodyClass { TailCall, Thunk, FrameSavesLR, PlainBody };

/// A pattern selected for outlining with its surviving occurrences.
struct OutlinePlan {
  std::vector<Candidate> Cands;
  unsigned Len = 0;
  BodyClass Body = BodyClass::PlainBody;
  int64_t Benefit = 0;
  /// First-candidate location, used to copy the sequence and to break ties
  /// deterministically.
  unsigned FirstStart = 0;
};

BodyClass classifyPattern(const std::vector<MachineInstr> &Seq) {
  assert(!Seq.empty() && "empty pattern");
  if (Seq.back().isReturn())
    return BodyClass::TailCall;
  unsigned NumCalls = 0;
  for (const MachineInstr &MI : Seq)
    if (MI.isCall())
      ++NumCalls;
  if (NumCalls == 0)
    return BodyClass::PlainBody;
  if (NumCalls == 1 && Seq.back().isCall())
    return BodyClass::Thunk;
  return BodyClass::FrameSavesLR;
}

unsigned frameOverheadForBody(BodyClass B) {
  switch (B) {
  case BodyClass::TailCall:
  case BodyClass::Thunk:
    return 0;
  case BodyClass::PlainBody:
    return 4;
  case BodyClass::FrameSavesLR:
    return 12;
  }
  return 12;
}

/// Symbols of functions whose execution depends on entering with exactly
/// the SP their original call sites had (outlined functions that address
/// the caller's frame, directly or through calls to other such functions).
/// A candidate containing a call to one of these must be treated as
/// SP-using: placing it under a stack-shifting call variant would move
/// every frame slot it touches by 16.
using SpSensitiveSet = std::unordered_set<uint32_t>;

/// \returns true if \p MI reads or writes SP in a way that is *not*
/// shift-invariant. The balanced LR push/pop (STRpre/LDRpost of x30) is a
/// pure relative push and works at any SP.
bool isShiftSensitiveSPUse(const MachineInstr &MI) {
  if ((MI.opcode() == Opcode::STRpre || MI.opcode() == Opcode::LDRpost) &&
      MI.operand(0).getReg() == LR)
    return false;
  return MI.usesOrModifiesSP();
}

SpSensitiveSet computeSpSensitive(const Module &M) {
  SpSensitiveSet Sensitive;
  // Direct sensitivity: outlined functions with caller-frame accesses.
  for (const MachineFunction &MF : M.Functions) {
    if (!MF.IsOutlined)
      continue;
    for (const MachineBasicBlock &MBB : MF.Blocks)
      for (const MachineInstr &MI : MBB.Instrs)
        if (isShiftSensitiveSPUse(MI)) {
          Sensitive.insert(MF.Name);
          break;
        }
  }
  // Transitive: an outlined function calling a sensitive one forwards its
  // (possibly shifted) SP into it.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const MachineFunction &MF : M.Functions) {
      if (!MF.IsOutlined || Sensitive.count(MF.Name))
        continue;
      for (const MachineBasicBlock &MBB : MF.Blocks)
        for (const MachineInstr &MI : MBB.Instrs)
          if ((MI.opcode() == Opcode::BL || MI.opcode() == Opcode::Btail) &&
              Sensitive.count(MI.operand(0).getSym())) {
            Sensitive.insert(MF.Name);
            Changed = true;
            break;
          }
    }
  }
  return Sensitive;
}

/// \returns the heat class of module function \p Func under \p Opts. Warm
/// when heat guidance is off or the index is out of range (functions
/// appended by later rounds have no profile entry).
HeatClass heatClassOf(const OutlinerOptions &Opts, uint32_t Func) {
  if (!Opts.HeatGuided || Func >= Opts.FunctionHeatClasses.size())
    return HeatClass::Warm;
  return static_cast<HeatClass>(Opts.FunctionHeatClasses[Func]);
}

/// Decides the call variant for one occurrence, or returns false if the
/// occurrence cannot be outlined (e.g. SP-relative accesses under a
/// stack-shifting variant). \p ColdFunc marks occurrences in Cold
/// functions, where size wins every latency trade: the RegSave variant is
/// accepted even when the EnableRegSave ablation turned it off.
bool classifyCandidate(Candidate &C, BodyClass Body,
                       const MachineFunction &MF, const Liveness &LV,
                       const SpSensitiveSet &Sensitive,
                       const OutlinerOptions &Opts, bool ColdFunc) {
  const auto &Instrs = MF.Blocks[C.Block].Instrs;
  assert(C.InstrStart + C.Len <= Instrs.size() && "candidate out of range");

  bool UsesSP = false;
  RegMask Touched = 0;
  for (unsigned I = C.InstrStart, E = C.InstrStart + C.Len; I != E; ++I) {
    UsesSP |= Instrs[I].usesOrModifiesSP();
    if (Instrs[I].opcode() == Opcode::BL &&
        Sensitive.count(Instrs[I].operand(0).getSym()))
      UsesSP = true;
    Touched |= Instrs[I].defs() | Instrs[I].uses();
  }

  switch (Body) {
  case BodyClass::TailCall:
    C.Variant = CallVariant::TailCall;
    return true;
  case BodyClass::Thunk:
    C.Variant = CallVariant::Thunk;
    return true;
  case BodyClass::FrameSavesLR:
    // The outlined frame saves LR with STR lr,[sp,#-16]!, which shifts
    // every SP-relative offset in the body; reject bodies that touch SP.
    if (UsesSP)
      return false;
    C.Variant = CallVariant::FrameSavesLR;
    return true;
  case BodyClass::PlainBody:
    break;
  }

  // PlainBody: pick per-occurrence LR handling.
  //
  // Inside an already-outlined function we must be fully conservative: its
  // callers were rewritten under the contract that it behaves exactly like
  // the original instruction sequence, so it must not clobber *any*
  // register the sequence did not already clobber (and its own RET needs
  // LR). Only the self-contained SaveLRToStack call sequence qualifies.
  const bool Conservative = MF.IsOutlined;
  const bool LRLiveAfter =
      Conservative ||
      maskContains(LV.liveAfter(C.Block, C.InstrStart + C.Len - 1), LR);
  if (!LRLiveAfter) {
    C.Variant = CallVariant::NoLRSave;
    return true;
  }
  if ((Opts.EnableRegSave || ColdFunc) && !Conservative) {
    RegMask Free = regSaveCandidateMask() &
                   ~LV.liveBefore(C.Block, C.InstrStart) & ~Touched;
    if (Free != 0) {
      for (unsigned I = 9; I <= 15; ++I) {
        if (maskContains(Free, xreg(I))) {
          C.SaveReg = xreg(I);
          break;
        }
      }
      C.Variant = CallVariant::RegSave;
      return true;
    }
  }
  if (UsesSP)
    return false;
  C.Variant = CallVariant::SaveLRToStack;
  return true;
}

int64_t computeBenefit(const OutlinePlan &Plan) {
  const int64_t SeqBytes = int64_t(Plan.Len) * InstrBytes;
  int64_t NotOutlined = SeqBytes * int64_t(Plan.Cands.size());
  int64_t CallSites = 0;
  for (const Candidate &C : Plan.Cands)
    CallSites += callOverheadBytes(C.Variant);
  int64_t OutlinedCost =
      CallSites + SeqBytes + frameOverheadForBody(Plan.Body);
  return NotOutlined - OutlinedCost;
}

std::vector<MachineInstr> callSiteSequence(const Candidate &C,
                                           uint32_t OutSym) {
  using MO = MachineOperand;
  std::vector<MachineInstr> Seq;
  switch (C.Variant) {
  case CallVariant::TailCall:
    Seq.emplace_back(Opcode::Btail, MO::sym(OutSym));
    break;
  case CallVariant::Thunk:
  case CallVariant::NoLRSave:
  case CallVariant::FrameSavesLR:
    Seq.emplace_back(Opcode::BL, MO::sym(OutSym));
    break;
  case CallVariant::RegSave:
    assert(C.SaveReg != Reg::None && "RegSave without a register");
    Seq.emplace_back(Opcode::MOVrr, MO::reg(C.SaveReg), MO::reg(LR));
    Seq.emplace_back(Opcode::BL, MO::sym(OutSym));
    Seq.emplace_back(Opcode::MOVrr, MO::reg(LR), MO::reg(C.SaveReg));
    break;
  case CallVariant::SaveLRToStack:
    Seq.emplace_back(Opcode::STRpre, MO::reg(LR), MO::reg(Reg::SP),
                     MO::imm(-16));
    Seq.emplace_back(Opcode::BL, MO::sym(OutSym));
    Seq.emplace_back(Opcode::LDRpost, MO::reg(LR), MO::reg(Reg::SP),
                     MO::imm(16));
    break;
  }
  return Seq;
}

MachineFunction buildOutlinedFunction(const std::vector<MachineInstr> &Seq,
                                      BodyClass Body, uint32_t NameSym) {
  using MO = MachineOperand;
  MachineFunction MF;
  MF.Name = NameSym;
  MF.IsOutlined = true;
  MachineBasicBlock &MBB = MF.addBlock();
  switch (Body) {
  case BodyClass::TailCall:
    MF.FrameKind = OutlinedFrameKind::TailCall;
    MBB.Instrs = Seq;
    break;
  case BodyClass::Thunk: {
    MF.FrameKind = OutlinedFrameKind::Thunk;
    MBB.Instrs.assign(Seq.begin(), Seq.end() - 1);
    assert(Seq.back().opcode() == Opcode::BL && "thunk must end in a call");
    MBB.push(MachineInstr(Opcode::Btail,
                          MO::sym(Seq.back().operand(0).getSym())));
    break;
  }
  case BodyClass::PlainBody:
    MF.FrameKind = OutlinedFrameKind::AppendedRet;
    MBB.Instrs = Seq;
    MBB.push(MachineInstr(Opcode::RET));
    break;
  case BodyClass::FrameSavesLR:
    MF.FrameKind = OutlinedFrameKind::SavesLRInFrame;
    MBB.push(MachineInstr(Opcode::STRpre, MO::reg(LR), MO::reg(Reg::SP),
                          MO::imm(-16)));
    for (const MachineInstr &MI : Seq)
      MBB.push(MI);
    MBB.push(MachineInstr(Opcode::LDRpost, MO::reg(LR), MO::reg(Reg::SP),
                          MO::imm(16)));
    MBB.push(MachineInstr(Opcode::RET));
    break;
  }
  return MF;
}

/// Outcome of examining one repeated substring. Built concurrently into
/// index-owned slots; folded serially in enumeration order.
struct PlanResult {
  OutlinePlan Plan;
  bool Valid = false;
  uint64_t DroppedSP = 0;
  uint64_t Unprofitable = 0;
  uint64_t DroppedHot = 0;
  std::vector<HeatSuppressedSite> HotSites;
};

/// Replaces the call of an injected-corrupt rewrite with a branch to a
/// block that cannot exist, keeping the instruction count (and therefore
/// the round's size accounting) unchanged. verifyModule catches this.
void corruptCallSite(std::vector<MachineInstr> &Repl) {
  for (MachineInstr &MI : Repl)
    if (MI.opcode() == Opcode::BL || MI.opcode() == Opcode::Btail) {
      MI = MachineInstr(Opcode::B, MachineOperand::block(0x00FFFFFFu));
      return;
    }
}

} // namespace

uint64_t mco::hashPattern(const std::vector<MachineInstr> &Seq) {
  uint64_t H = 0xCBF29CE484222325ull ^ Seq.size();
  for (const MachineInstr &MI : Seq) {
    H ^= MI.hash() + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
  }
  return H;
}

struct OutlinerEngine::State {
  SymbolInterner &Syms;
  Module &M;
  OutlinerOptions Opts;
  /// Present only when Opts.Threads > 1.
  std::unique_ptr<ThreadPool> Pool;

  // Round-over-round state, reused when Opts.Incremental.
  InstructionMapper Mapper;
  std::vector<Liveness> LV;
  /// Functions edited by the previous round (sized to the function count
  /// *before* that round appended its new functions, so appended functions
  /// are implicitly dirty by being out of range).
  std::vector<bool> Dirty;
  bool FirstRound = true;

  // Guarded-outlining state.
  RoundTransaction Txn;
  std::unordered_set<uint64_t> Quarantined;

  State(SymbolInterner &Syms, Module &M, const OutlinerOptions &Opts)
      : Syms(Syms), M(M), Opts(Opts) {
    if (Opts.Threads > 1)
      Pool = std::make_unique<ThreadPool>(Opts.Threads);
  }

  void resetIncremental() {
    Mapper = InstructionMapper();
    LV.clear();
    Dirty.clear();
    FirstRound = true;
  }

  void rollbackLastRound() {
    assert(Txn.Valid && "no transaction to roll back");
    M.Functions.resize(Txn.FuncCountBefore);
    for (auto &[F, Saved] : Txn.SavedFunctions)
      M.Functions[F] = std::move(Saved);
    Txn = RoundTransaction{};
    // Mapper/liveness segments describe the rolled-back bodies; recompute
    // from scratch next round.
    resetIncremental();
  }

  void forEach(size_t N, const std::function<void(size_t)> &Fn) {
    if (Pool)
      Pool->parallelFor(N, Fn);
    else
      for (size_t I = 0; I != N; ++I)
        Fn(I);
  }

  /// Cooperative cancellation point (see OutlinerOptions::CancelFlag).
  void checkCancelled() const {
    if (Opts.CancelFlag &&
        Opts.CancelFlag->load(std::memory_order_relaxed))
      throw OutlineCancelled();
  }

  void buildPlan(unsigned Length, const unsigned *Starts, size_t NumStarts,
                 const SpSensitiveSet &Sensitive, PlanResult &Out);
  OutlineRoundStats runRound(unsigned Round);
};

void OutlinerEngine::State::buildPlan(unsigned Length, const unsigned *Starts,
                                      size_t NumStarts,
                                      const SpSensitiveSet &Sensitive,
                                      PlanResult &Out) {
  OutlinePlan &Plan = Out.Plan;
  Plan.Len = Length;

  // Occurrences of one pattern must not overlap each other; keep a
  // greedy left-to-right non-overlapping subset (indices are sorted).
  // Heat guidance filters here, before the overlap subset is chosen, so a
  // refused occurrence never shadows an outlineable one: Hot functions are
  // never outlined from, and patterns below MinLength (discovered only for
  // the cold floor) keep cold-function occurrences only.
  const bool ColdOnlyPattern = Opts.HeatGuided && Length < Opts.MinLength;
  unsigned PrevEnd = 0;
  bool First = true;
  for (size_t SI = 0; SI != NumStarts; ++SI) {
    const unsigned Start = Starts[SI];
    if (!First && Start < PrevEnd)
      continue;
    const InstructionMapper::Location &Loc = Mapper.location(Start);
    if (!Loc.IsLegal)
      continue; // Defensive; repeated ids are always legal.
    const HeatClass HC = heatClassOf(Opts, Loc.Func);
    if (HC == HeatClass::Hot) {
      ++Out.DroppedHot;
      Out.HotSites.push_back({Loc.Func, Loc.Block, Loc.Instr, Length});
      continue;
    }
    if (ColdOnlyPattern && HC != HeatClass::Cold)
      continue;
    Candidate C;
    C.StartIdx = Start;
    C.Len = Length;
    C.Func = Loc.Func;
    C.Block = Loc.Block;
    C.InstrStart = Loc.Instr;
    Plan.Cands.push_back(C);
    PrevEnd = Start + Length;
    First = false;
  }
  if (Plan.Cands.size() < 2)
    return;

  // The sequence (identical for every occurrence).
  const Candidate &C0 = Plan.Cands.front();
  const auto &Instrs = M.Functions[C0.Func].Blocks[C0.Block].Instrs;
  std::vector<MachineInstr> Seq(Instrs.begin() + C0.InstrStart,
                                Instrs.begin() + C0.InstrStart + C0.Len);
  Plan.Body = classifyPattern(Seq);

  // Per-occurrence call variants; drop occurrences that can't be called.
  std::vector<Candidate> Kept;
  for (Candidate &C : Plan.Cands) {
    if (classifyCandidate(C, Plan.Body, M.Functions[C.Func], LV[C.Func],
                          Sensitive, Opts,
                          heatClassOf(Opts, C.Func) == HeatClass::Cold))
      Kept.push_back(C);
    else
      ++Out.DroppedSP;
  }
  Plan.Cands = std::move(Kept);
  if (Plan.Cands.size() < 2)
    return;

  Plan.FirstStart = Plan.Cands.front().StartIdx;
  Plan.Benefit = computeBenefit(Plan);
  if (Plan.Benefit < 1) {
    ++Out.Unprofitable;
    return;
  }
  Out.Valid = true;
}

OutlineRoundStats OutlinerEngine::State::runRound(unsigned Round) {
  MCO_TRACE_SPAN("outliner.round:" + std::to_string(Round), "outliner");
  checkCancelled();
  OutlineRoundStats Stats;
  Stats.CodeSizeBefore = M.codeSize();
  faultSetRound(Round);
  Txn = RoundTransaction{};
  if (Opts.Transactional) {
    Txn.Valid = true;
    Txn.FuncCountBefore = M.Functions.size();
  }

  // Map the module to an integer string. Non-incremental rounds start from
  // a fresh mapper (ids in first-appearance order, like stock LLVM);
  // incremental rounds reuse the previous round's segments for clean
  // functions — the id *values* then differ from a fresh mapping, but the
  // equality structure (all the algorithm observes) is identical.
  const bool Reuse = Opts.Incremental && !FirstRound;
  if (!Opts.Incremental)
    Mapper = InstructionMapper();
  {
    MCO_TRACE_SPAN("outliner.map", "outliner");
    Mapper.update(M, Reuse ? Dirty : std::vector<bool>{});
  }
  Stats.FunctionsRemapped = Mapper.functionsRemapped();

  const std::vector<unsigned> &Str = Mapper.string();
  if (Str.empty()) {
    Stats.CodeSizeAfter = Stats.CodeSizeBefore;
    Dirty.assign(M.Functions.size(), false);
    FirstRound = false;
    return Stats;
  }

  // Liveness is computed once per round. This is sound: explicit LR reads
  // are outlining-illegal, so the LR-liveness facts used to classify one
  // candidate cannot be invalidated by rewriting another (rewrites only
  // insert LR *defs* at positions where the original sequence was already
  // LR-dead, plus scratch-register save/restores that define before use).
  //
  // Liveness is purely intra-function, so incremental rounds recompute it
  // only for functions the previous round edited or created.
  std::vector<uint32_t> ToCompute;
  const uint32_t NumFuncs = static_cast<uint32_t>(M.Functions.size());
  if (Reuse) {
    ToCompute.reserve(NumFuncs - LV.size() + 8);
    for (uint32_t F = 0; F != NumFuncs; ++F)
      if (F >= Dirty.size() || Dirty[F])
        ToCompute.push_back(F);
  } else {
    ToCompute.resize(NumFuncs);
    for (uint32_t F = 0; F != NumFuncs; ++F)
      ToCompute[F] = F;
  }
  LV.resize(NumFuncs);
  {
    MCO_TRACE_SPAN("outliner.liveness", "outliner");
    forEach(ToCompute.size(), [&](size_t I) {
      LV[ToCompute[I]].recompute(M.Functions[ToCompute[I]]);
    });
  }
  Stats.LivenessComputed = ToCompute.size();

  const SpSensitiveSet Sensitive = computeSpSensitive(M);

  // Discover repeated substrings, streaming each pattern into one flat
  // staging arena (a shared start-index pool plus fixed-size PatternRef
  // records) instead of materializing a std::vector<RepeatedSubstring> —
  // one heap vector per pattern — between discovery and planning. Either
  // engine reports the identical pattern set (differential-tested), and
  // the plan sort below is a strict total order, so the engines' different
  // enumeration orders cannot change the committed output.
  struct PatternRef {
    uint32_t Length;
    uint32_t Offset; ///< Into StartArena.
    uint32_t Count;
  };
  std::vector<unsigned> StartArena;
  std::vector<PatternRef> Patterns;
  const bool UseTree = Opts.Discovery == DiscoveryEngine::Tree;
  const char *EngineName = UseTree ? "tree" : "sarray";
  size_t DiscoveryBytes = 0;
  {
    MCO_TRACE_SPAN(UseTree ? "outliner.discovery:tree"
                           : "outliner.discovery:sarray",
                   "outliner");
    const auto T0 = std::chrono::steady_clock::now();
    RepeatedSubstringSink Stage = [&](unsigned Length,
                                      const unsigned *Starts,
                                      size_t NumStarts) {
      Patterns.push_back({Length, static_cast<uint32_t>(StartArena.size()),
                          static_cast<uint32_t>(NumStarts)});
      StartArena.insert(StartArena.end(), Starts, Starts + NumStarts);
    };
    // Heat guidance lowers the discovery floor to the cold minimum (the
    // shorter patterns are then filtered to cold-function occurrences in
    // buildPlan). With stock knobs ColdMinLength == MinLength, so the
    // floor — and therefore the pattern set — is unchanged.
    const unsigned DiscMinLength =
        Opts.HeatGuided ? std::min(Opts.MinLength, Opts.ColdMinLength)
                        : Opts.MinLength;
    if (UseTree) {
      SuffixTree Tree(Str, Opts.LeafDescendants);
      Tree.forEachRepeatedSubstring(DiscMinLength, /*MinOccurrences=*/2,
                                    /*MaxLength=*/4096, Stage);
      DiscoveryBytes = Tree.memoryBytes();
    } else {
      SuffixArray Arr(Str, Opts.LeafDescendants);
      Arr.forEachRepeatedSubstring(DiscMinLength, /*MinOccurrences=*/2,
                                   /*MaxLength=*/4096, Stage);
      DiscoveryBytes = Arr.memoryBytes();
    }
    const double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    MetricsRegistry &MR = MetricsRegistry::global();
    MR.histogram("outliner.discovery.seconds", {{"engine", EngineName}})
        .observe(Seconds);
    MR.histogram("outliner.discovery.bytes", {{"engine", EngineName}})
        .observe(static_cast<double>(DiscoveryBytes));
    MR.histogram("outliner.discovery.patterns", {{"engine", EngineName}})
        .observe(static_cast<double>(Patterns.size()));
  }

  checkCancelled();

  // Build plans, one repeated substring per index-owned slot. Everything
  // the workers read (module, mapper, liveness, sensitivity, the staging
  // arena) is immutable during the fan-out.
  Stats.PatternsConsidered = Patterns.size();
  std::vector<PlanResult> Results(Patterns.size());
  {
    MCO_TRACE_SPAN("outliner.plan", "outliner");
    forEach(Patterns.size(), [&](size_t RIdx) {
      const PatternRef &P = Patterns[RIdx];
      buildPlan(P.Length, StartArena.data() + P.Offset, P.Count, Sensitive,
                Results[RIdx]);
    });
  }

  std::vector<OutlinePlan> Plans;
  Plans.reserve(Results.size());
  for (PlanResult &R : Results) {
    Stats.CandidatesDroppedSP += R.DroppedSP;
    Stats.PatternsUnprofitable += R.Unprofitable;
    Stats.CandidatesDroppedHot += R.DroppedHot;
    Stats.HeatSuppressed.insert(Stats.HeatSuppressed.end(),
                                R.HotSites.begin(), R.HotSites.end());
    if (R.Valid)
      Plans.push_back(std::move(R.Plan));
  }

  // Greedy order: the most immediately profitable pattern first — exactly
  // the heuristic whose myopia motivates repeated outlining (Fig. 11).
  // The comparator is a strict total order on distinct plans, so the
  // sorted order does not depend on the enumeration order above.
  std::sort(Plans.begin(), Plans.end(),
            [this](const OutlinePlan &A, const OutlinePlan &B) {
              if (Opts.SortByBenefit) {
                if (A.Benefit != B.Benefit)
                  return A.Benefit > B.Benefit;
              } else {
                if (A.Len != B.Len)
                  return A.Len > B.Len;
              }
              if (A.Len != B.Len)
                return A.Len > B.Len;
              return A.FirstStart < B.FirstStart;
            });

  // Last cancellation point: past here the round mutates the module, and
  // a cancel must never leave a half-committed round behind.
  checkCancelled();

  // Commit plans, skipping occurrences that overlap already-taken string
  // regions, and re-checking profitability on what survives.
  std::vector<bool> Consumed(Str.size(), false);
  struct Edit {
    uint32_t Func;
    uint32_t Block;
    uint32_t InstrStart;
    uint32_t Len;
    std::vector<MachineInstr> Replacement;
    uint32_t NewFuncIdx;
  };
  // Collected flat in plan order, then keyed once by a single sort —
  // (Func, Block, InstrStart desc) — instead of a per-insert red-black
  // tree of per-block vectors. Keys are distinct because committed string
  // regions are disjoint (Consumed), so the sort is deterministic.
  std::vector<Edit> Edits;
  std::vector<MachineFunction> NewFunctions;

  MCO_TRACE_SPAN("outliner.commit", "outliner");
  for (OutlinePlan &Plan : Plans) {
    std::vector<Candidate> Alive;
    for (const Candidate &C : Plan.Cands) {
      bool Clobbered = false;
      for (unsigned I = C.StartIdx, E = C.StartIdx + C.Len; I != E; ++I)
        if (Consumed[I]) {
          Clobbered = true;
          break;
        }
      if (!Clobbered)
        Alive.push_back(C);
      else
        ++Stats.CandidatesDroppedOverlap;
    }
    if (Alive.size() < 2)
      continue;
    Plan.Cands = std::move(Alive);
    Plan.Benefit = computeBenefit(Plan);
    if (Plan.Benefit < 1)
      continue;

    // Materialize the outlined function.
    const Candidate &C0 = Plan.Cands.front();
    const auto &Instrs = M.Functions[C0.Func].Blocks[C0.Block].Instrs;
    std::vector<MachineInstr> Seq(Instrs.begin() + C0.InstrStart,
                                  Instrs.begin() + C0.InstrStart + C0.Len);
    uint64_t PatternHash = 0;
    if (Opts.Transactional || !Quarantined.empty()) {
      PatternHash = hashPattern(Seq);
      if (Quarantined.count(PatternHash)) {
        // A previous attempt failed verification on this pattern; skip it.
        // Its string region stays unconsumed, so later plans may claim it.
        ++Stats.PatternsQuarantined;
        continue;
      }
    }
    uint32_t OutSym = Syms.internSymbol(
        Opts.NamePrefix + "_" + std::to_string(Round) + "_" +
        std::to_string(NewFunctions.size()));
    NewFunctions.push_back(buildOutlinedFunction(Seq, Plan.Body, OutSym));
    NewFunctions.back().OutlinedCallSites =
        static_cast<uint32_t>(Plan.Cands.size());
    const uint32_t NewFuncIdx =
        static_cast<uint32_t>(NewFunctions.size()) - 1;
    if (Opts.Transactional)
      Txn.PatternHashes.push_back(PatternHash);

    for (const Candidate &C : Plan.Cands) {
      for (unsigned I = C.StartIdx, E = C.StartIdx + C.Len; I != E; ++I)
        Consumed[I] = true;
      std::vector<MachineInstr> Repl = callSiteSequence(C, OutSym);
      if (faultSiteFires(FaultOutlinerRewriteCorrupt))
        corruptCallSite(Repl);
      Edits.push_back(Edit{C.Func, C.Block, C.InstrStart, C.Len,
                           std::move(Repl), NewFuncIdx});
      ++Stats.SequencesOutlined;
    }
    Stats.OutlinedFunctionBytes += NewFunctions.back().codeSize();
    ++Stats.FunctionsCreated;
  }

  // Key the edit list once: functions ascending (the transaction wants
  // same-function groups adjacent, in index order), blocks ascending, and
  // InstrStart *descending* within a block so a plain forward walk applies
  // back-to-front and never invalidates a later edit's indices.
  std::sort(Edits.begin(), Edits.end(), [](const Edit &A, const Edit &B) {
    if (A.Func != B.Func)
      return A.Func < B.Func;
    if (A.Block != B.Block)
      return A.Block < B.Block;
    return A.InstrStart > B.InstrStart;
  });

  // Snapshot the functions the round is about to edit (deep copies taken
  // before any rewrite is applied), plus the edit list for the integrity
  // check.
  if (Opts.Transactional) {
    uint32_t PrevSaved = UINT32_MAX;
    for (const Edit &E : Edits) {
      if (E.Func != PrevSaved) {
        Txn.SavedFunctions.emplace_back(E.Func, M.Functions[E.Func]);
        PrevSaved = E.Func;
      }
      Txn.Edits.push_back({E.Func, E.Block, E.InstrStart, E.Len,
                           E.NewFuncIdx});
    }
  }

  // Apply. The sort put each block's edits back-to-front already.
  for (const Edit &E : Edits) {
    auto &Instrs = M.Functions[E.Func].Blocks[E.Block].Instrs;
    Instrs.erase(Instrs.begin() + E.InstrStart,
                 Instrs.begin() + E.InstrStart + E.Len);
    Instrs.insert(Instrs.begin() + E.InstrStart, E.Replacement.begin(),
                  E.Replacement.end());
  }

  // Next round's invalidation set: functions edited this round. Sized
  // before the append so the new outlined functions are out of range and
  // therefore remapped/recomputed unconditionally.
  Dirty.assign(M.Functions.size(), false);
  uint32_t PrevFunc = UINT32_MAX;
  for (const Edit &E : Edits) {
    Dirty[E.Func] = true;
    if (E.Func != PrevFunc) {
      ++Stats.FunctionsEdited;
      PrevFunc = E.Func;
    }
  }

  for (MachineFunction &MF : NewFunctions)
    M.Functions.push_back(std::move(MF));

  FirstRound = false;
  Stats.CodeSizeAfter = M.codeSize();
  assert(Stats.CodeSizeAfter <= Stats.CodeSizeBefore &&
         "outlining must never grow the code");

  // Work counters (add semantics): rolled-back guard attempts count too —
  // these measure work performed, not what shipped (BuildResult carries
  // the shipped totals).
  MetricsRegistry &MR = MetricsRegistry::global();
  MR.counter("outliner.rounds_run").add(1);
  MR.counter("outliner.patterns_considered").add(Stats.PatternsConsidered);
  MR.counter("outliner.sequences_outlined").add(Stats.SequencesOutlined);
  MR.counter("outliner.functions_created").add(Stats.FunctionsCreated);
  if (Opts.HeatGuided) {
    MR.counter("outliner.heat.rounds_guided").add(1);
    MR.counter("outliner.heat.candidates_dropped_hot")
        .add(Stats.CandidatesDroppedHot);
  }
  return Stats;
}

OutlinerEngine::OutlinerEngine(SymbolInterner &Syms, Module &M,
                               const OutlinerOptions &Opts)
    : S(std::make_unique<State>(Syms, M, Opts)) {}

OutlinerEngine::~OutlinerEngine() = default;

OutlineRoundStats OutlinerEngine::runRound(unsigned Round) {
  return S->runRound(Round);
}

const RoundTransaction &OutlinerEngine::lastTransaction() const {
  return S->Txn;
}

void OutlinerEngine::rollbackLastRound() { S->rollbackLastRound(); }

void OutlinerEngine::resetIncrementalState() { S->resetIncremental(); }

void OutlinerEngine::quarantinePattern(uint64_t PatternHash) {
  S->Quarantined.insert(PatternHash);
}

size_t OutlinerEngine::numQuarantinedPatterns() const {
  return S->Quarantined.size();
}

OutlineRoundStats mco::runOutlinerRound(SymbolInterner &Syms, Module &M,
                                        unsigned Round,
                                        const OutlinerOptions &Opts) {
  OutlinerEngine Engine(Syms, M, Opts);
  return Engine.runRound(Round);
}

RepeatedOutlineStats mco::runRepeatedOutliner(SymbolInterner &Syms, Module &M,
                                              unsigned MaxRounds,
                                              const OutlinerOptions &Opts) {
  RepeatedOutlineStats All;
  OutlinerEngine Engine(Syms, M, Opts);
  for (unsigned Round = 1; Round <= MaxRounds; ++Round) {
    OutlineRoundStats RS = Engine.runRound(Round);
    bool Done = RS.FunctionsCreated == 0;
    All.Rounds.push_back(RS);
    if (Done)
      break;
  }
  return All;
}
