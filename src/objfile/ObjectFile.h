//===- objfile/ObjectFile.h - MCOB1 segmented object container --*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "MCOB1" object-file container: the Mach-O-shaped persisted form of a
/// built module, replacing the flat MCOM payload as what the pipeline emits
/// and what mco-run loads. Where MCOM is a bare module dump, MCOB1 records
/// what the paper measures on a real binary:
///
///   - a `__TEXT`/`__DATA` segment split, each with one section (`__text`,
///     `__const`) carrying vm addresses, vm sizes, file offsets, and file
///     sizes — the inputs to 16 KiB page accounting (BinaryImage::PageSize);
///   - a symbol table with local/global/exported visibility, section
///     membership, addresses, and sizes, covering defined functions,
///     defined globals, AND every undefined reference (runtime builtins,
///     cross-module callees of a per-module artifact);
///   - a sorted export trie over the exported symbols (compressed-prefix,
///     breadth-first node layout so hostile bytes cannot drive unbounded
///     recursion in a reader);
///   - relocation records for every inter-function and global reference:
///     symbol operands in the text payload are stored zeroed, and the
///     loader *relocates* them back through the relocation table instead
///     of trusting inline targets.
///
/// Addresses are deterministic: functions are laid out sequentially from
/// BinaryImage::TextBase in stored order, data at the next 16 KiB page
/// boundary with 8-byte-aligned globals — exactly BinaryImage's rules — so
/// the loader can verify every recorded address against a recomputation
/// and reject any container whose layout claims are inconsistent.
///
/// Trust boundary: bytes reaching these readers come from disk (cache
/// entries, --emit-obj products) and are untrusted. validateObjectFileBytes
/// is the FormatValidator pass — a structure-only bounds-checked walk that
/// runs before any object is constructed; readObjectFile then performs the
/// semantic checks (layout recomputation, relocation coverage, export-trie
/// / symbol-table agreement). Every failure is a CorruptInput Status (tool
/// exit 65), never an abort.
///
/// The `objfile.reloc.garble` fault site flips one relocation target at
/// write time, planting exactly the damage the loader's range checks must
/// catch (the loader reports a Status; it never "jumps" to a bogus
/// address by decoding a garbled target into an operand).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OBJFILE_OBJECTFILE_H
#define MCO_OBJFILE_OBJECTFILE_H

#include "cache/ArtifactCache.h"
#include "mir/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

/// First bytes of the container format.
inline constexpr const char *ObjectFileMagic = "MCOB1";
inline constexpr uint8_t ObjectFileVersion = 2;

enum class ObjSymbolKind : uint8_t { Function = 0, Global = 1, Undefined = 2 };

/// nm-style visibility: Local symbols (outlined clones) print lowercase,
/// Global print uppercase, Exported additionally appear in the export trie.
enum class ObjVisibility : uint8_t { Local = 0, Global = 1, Exported = 2 };

/// 1-based section ordinals (0 = no section, i.e. undefined).
inline constexpr uint8_t ObjSectNone = 0;
inline constexpr uint8_t ObjSectText = 1;
inline constexpr uint8_t ObjSectConst = 2;

/// One symbol-table entry, fully decoded (names resolved).
struct ObjSymbol {
  std::string Name;
  ObjSymbolKind Kind = ObjSymbolKind::Undefined;
  ObjVisibility Vis = ObjVisibility::Global;
  uint8_t Section = ObjSectNone;
  bool IsOutlined = false;
  OutlinedFrameKind FrameKind = OutlinedFrameKind::NotOutlined;
  uint32_t OutlinedCallSites = 0;
  uint32_t OriginModule = 0;
  uint64_t Addr = 0;
  uint64_t Size = 0;
};

/// One section, with its owning segment name.
struct ObjSectionInfo {
  std::string Segment; ///< "__TEXT" or "__DATA".
  std::string Name;    ///< "__text" or "__const".
  uint64_t VmAddr = 0;
  uint64_t VmSize = 0;
  uint64_t FileOff = 0;
  uint64_t FileSize = 0;
};

/// Relocation kinds, derived from the referencing opcode.
inline constexpr uint8_t ObjRelocCall = 0;     ///< BL
inline constexpr uint8_t ObjRelocTailCall = 1; ///< Btail
inline constexpr uint8_t ObjRelocAdr = 2;      ///< ADR (global address)
inline constexpr uint8_t ObjRelocOther = 3;    ///< any other symbol operand

struct ObjRelocation {
  uint32_t FuncSym = 0;  ///< Symbol-table index of the containing function.
  uint32_t InstrIdx = 0; ///< Flat instruction index within that function.
  uint8_t OperandIdx = 0;
  uint8_t Kind = ObjRelocOther;
  uint32_t TargetSym = 0; ///< Symbol-table index of the referenced symbol.
};

/// A fully decoded container. Function bodies carry symbol operands whose
/// Val is an index into Symbols (relocations already applied and
/// cross-checked); toModuleArtifact() interns real symbol ids.
struct LoadedObject {
  std::string ModuleName;
  std::vector<ObjSectionInfo> Sections; ///< [0] __text, [1] __const.
  std::vector<ObjSymbol> Symbols;
  std::vector<ObjRelocation> Relocations;
  /// Exported names decoded from the trie, in sorted order (the trie's
  /// DFS order; the loader verifies it matches the exported symbols).
  std::vector<std::string> ExportedNames;
  /// Decoded function bodies, parallel to the Function entries of Symbols
  /// (in symbol-table order). Symbol operands hold Symbols indices.
  std::vector<std::vector<MachineBasicBlock>> FunctionBodies;
  /// Raw `__const` payload; each Global symbol's bytes are the
  /// [Addr - DataBase, +Size) slice.
  std::string DataPayload;
  RepeatedOutlineStats Stats;
  uint64_t RoundsRolledBack = 0;
  uint64_t PatternsQuarantined = 0;

  uint64_t textVmSize() const { return Sections[0].VmSize; }
  uint64_t dataVmSize() const { return Sections[1].VmSize; }
};

/// The default dead-strip/export root policy: span drivers and the classic
/// entry points. `--export` extends this set at the tools.
bool isDefaultExportedName(const std::string &Name);

/// Serializes \p M as an MCOB1 container WITHOUT the stats trailer —
/// deterministic and symbol-id-independent, the chunk programContentDigest
/// hashes. \p Exports (optional) adds names to the exported set on top of
/// the default policy.
std::string
serializeObjectContent(const Module &M, const SymbolNameFn &NameOf,
                       const std::vector<std::string> *Exports = nullptr);

/// serializeObjectContent plus the outlining-stats trailer — the persisted
/// artifact form (cache payload under the MCOA1 seal, --emit-obj output).
/// The `objfile.reloc.garble` fault site fires here.
std::string
serializeObjectFile(const Module &M, const RepeatedOutlineStats &Stats,
                    uint64_t RoundsRolledBack, uint64_t PatternsQuarantined,
                    const SymbolNameFn &NameOf,
                    const std::vector<std::string> *Exports = nullptr);

/// The MCOB1 FormatValidator pass: a structure-only, bounds-checked walk of
/// the full grammar — magic, string table, segment/section ranges, symbol
/// fields, export-trie node layout (breadth-first, cycle-free), relocation
/// indices, text/data payload extents, stats trailer, trailing bytes —
/// WITHOUT constructing any object or interning any symbol.
Status validateObjectFileBytes(const std::string &Bytes);

/// Decodes a container into a LoadedObject: runs validateObjectFileBytes,
/// then the semantic layer — recomputes the deterministic layout and
/// compares every recorded address/size, applies relocations (each symbol
/// operand must be covered by exactly one in-range relocation), and walks
/// the export trie verifying it is the sorted set of exported symbols.
/// No symbol is interned; tools (mco-nm, mco-size) stop here.
Expected<LoadedObject> readObjectFile(const std::string &Bytes);

/// Rebuilds the module (+stats) from a decoded container, interning every
/// referenced name through \p Syms.
Expected<ModuleArtifact> toModuleArtifact(const LoadedObject &O,
                                          SymbolInterner &Syms);

/// readObjectFile + toModuleArtifact: the one-call load path used by the
/// artifact cache and mco-run.
Expected<ModuleArtifact> deserializeObjectFile(const std::string &Bytes,
                                               SymbolInterner &Syms);

} // namespace mco

#endif // MCO_OBJFILE_OBJECTFILE_H
