//===- objfile/DeadStrip.cpp - Whole-program dead-code elimination --------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "objfile/DeadStrip.h"

#include "mir/Program.h"
#include "objfile/ObjectFile.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace mco;

DeadStripStats mco::runDeadStrip(Program &Prog, const DeadStripOptions &Opts) {
  DeadStripStats Stats;
  if (!Opts.Enabled)
    return Stats;
  const auto T0 = std::chrono::steady_clock::now();

  std::unordered_set<std::string> Extra(Opts.ExportedSymbols.begin(),
                                        Opts.ExportedSymbols.end());
  auto IsRoot = [&](const std::string &N) {
    return isDefaultExportedName(N) || Extra.count(N) != 0;
  };

  // Index every definition by symbol id. Duplicate definitions are the
  // linker's error to report, not ours — first one wins here, and since
  // liveness is per-symbol both copies survive or neither does.
  std::unordered_map<uint32_t, const MachineFunction *> FuncBySym;
  std::unordered_set<uint32_t> GlobalSyms;
  for (const std::unique_ptr<Module> &M : Prog.Modules) {
    for (const MachineFunction &MF : M->Functions) {
      FuncBySym.emplace(MF.Name, &MF);
      ++Stats.FunctionsScanned;
    }
    for (const GlobalData &G : M->Globals)
      GlobalSyms.insert(G.Name);
  }

  // Mark: conservative reachability over every Symbol operand of every
  // live function — opcode-independent, so an ADR-taken function address
  // that later feeds a BLR keeps its target live.
  std::unordered_set<uint32_t> Live;
  std::vector<uint32_t> Worklist;
  auto MarkLive = [&](uint32_t Sym) {
    if (!Live.insert(Sym).second)
      return;
    if (FuncBySym.count(Sym))
      Worklist.push_back(Sym);
  };
  for (const auto &[Sym, MF] : FuncBySym)
    if (IsRoot(Prog.symbolName(Sym)))
      MarkLive(Sym);
  for (uint32_t Sym : GlobalSyms)
    if (IsRoot(Prog.symbolName(Sym)))
      Live.insert(Sym);
  Stats.Roots = Live.size();

  while (!Worklist.empty()) {
    const MachineFunction *MF = FuncBySym[Worklist.back()];
    Worklist.pop_back();
    for (const MachineBasicBlock &MBB : MF->Blocks)
      for (const MachineInstr &MI : MBB.Instrs)
        for (unsigned OI = 0; OI < MI.numOperands(); ++OI)
          if (MI.operand(OI).isSym())
            MarkLive(MI.operand(OI).getSym());
  }

  // Sweep.
  for (std::unique_ptr<Module> &M : Prog.Modules) {
    auto DeadF = [&](const MachineFunction &MF) {
      if (Live.count(MF.Name))
        return false;
      ++Stats.FunctionsRemoved;
      Stats.BytesRemoved += MF.codeSize();
      return true;
    };
    M->Functions.erase(
        std::remove_if(M->Functions.begin(), M->Functions.end(), DeadF),
        M->Functions.end());
    auto DeadG = [&](const GlobalData &G) {
      if (Live.count(G.Name))
        return false;
      ++Stats.GlobalsRemoved;
      Stats.GlobalBytesRemoved += G.Bytes.size();
      return true;
    };
    M->Globals.erase(
        std::remove_if(M->Globals.begin(), M->Globals.end(), DeadG),
        M->Globals.end());
  }

  Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return Stats;
}
