//===- objfile/DeadStrip.h - Whole-program dead-code elimination -*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program dead-strip over the symbol + reference graph, run as a
/// pipeline pass BEFORE outlining (stripping first means the outliner never
/// wastes candidates on code that will not ship, and outlined results for
/// fully-live programs are unchanged by construction).
///
/// Roots are the exported symbols: the default policy
/// (isDefaultExportedName: `main`, `bench_main`, `span_*` drivers) plus any
/// names supplied through `--export`. Reachability walks every Symbol
/// operand of every reachable function — calls (BL/Btail) and global
/// address materializations (ADR) alike — so an indirect call through a
/// function whose address was taken (ADR then BLR) keeps its target live.
/// Unreachable functions and globals are removed; everything else is
/// untouched, so a program with no dead code round-trips bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_OBJFILE_DEADSTRIP_H
#define MCO_OBJFILE_DEADSTRIP_H

#include <cstdint>
#include <string>
#include <vector>

namespace mco {

class Program;

struct DeadStripOptions {
  /// Off by default: stripping changes what the outliner sees, so it is an
  /// opt-in build mode (`--dead-strip`) with `--no-dead-strip` as the
  /// explicit escape hatch once enabled in a config.
  bool Enabled = false;
  /// Extra root names on top of the default exported-name policy
  /// (`--export name,name,...`).
  std::vector<std::string> ExportedSymbols;
};

struct DeadStripStats {
  uint64_t Roots = 0;
  uint64_t FunctionsScanned = 0;
  uint64_t FunctionsRemoved = 0;
  uint64_t BytesRemoved = 0;
  uint64_t GlobalsRemoved = 0;
  uint64_t GlobalBytesRemoved = 0;
  double Seconds = 0.0;
};

/// Marks from the roots and sweeps unreachable functions and globals from
/// every module of \p Prog.
DeadStripStats runDeadStrip(Program &Prog, const DeadStripOptions &Opts);

} // namespace mco

#endif // MCO_OBJFILE_DEADSTRIP_H
