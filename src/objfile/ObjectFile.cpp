//===- objfile/ObjectFile.cpp - MCOB1 segmented object container ----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "objfile/ObjectFile.h"

#include "linker/Linker.h"
#include "support/BinReader.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace mco;

//===----------------------------------------------------------------------===//
// MCOB1 v1 serialization
//===----------------------------------------------------------------------===//

namespace {

// Little-endian fixed-width writers (the MCOM codec idiom).
void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }
void putU16(std::string &B, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putI64(std::string &B, int64_t V) { putU64(B, static_cast<uint64_t>(V)); }
void putStr(std::string &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B += S;
}

constexpr const char *SegTextName = "__TEXT";
constexpr const char *SegDataName = "__DATA";
constexpr const char *SectTextName = "__text";
constexpr const char *SectConstName = "__const";

/// Interns symbol names into a local table in first-use order, so the
/// encoding depends only on module *contents*, never on the symbol ids the
/// producing build happened to assign.
class StringTable {
public:
  explicit StringTable(const SymbolNameFn &NameOf) : NameOf(NameOf) {}

  uint32_t indexOf(uint32_t SymbolId) {
    std::string Name = NameOf(SymbolId);
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(Strings.size());
    Strings.push_back(Name);
    Index.emplace(std::move(Name), Idx);
    return Idx;
  }

  const std::vector<std::string> &strings() const { return Strings; }

private:
  const SymbolNameFn &NameOf;
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Index;
};

uint8_t relocKindOf(Opcode Op) {
  switch (Op) {
  case Opcode::BL:
    return ObjRelocCall;
  case Opcode::Btail:
    return ObjRelocTailCall;
  case Opcode::ADR:
    return ObjRelocAdr;
  default:
    return ObjRelocOther;
  }
}

/// The writer-side symbol-table row; Name is kept for trie construction.
struct SymRec {
  uint32_t NameIdx = 0;
  std::string Name;
  ObjSymbolKind Kind = ObjSymbolKind::Undefined;
  ObjVisibility Vis = ObjVisibility::Global;
  uint8_t Sect = ObjSectNone;
  uint8_t Flags = 0;
  uint8_t Frame = 0;
  uint32_t CallSites = 0;
  uint32_t Origin = 0;
  uint64_t Addr = 0;
  uint64_t Size = 0;
};

/// Compressed-prefix export trie, built as a tree and flattened
/// breadth-first so node i's children occupy one consecutive index run —
/// the layout the validator can prove cycle-free with a single counter.
struct TrieTreeNode {
  std::string Frag;
  bool Terminal = false;
  uint32_t SymIdx = 0;
  std::vector<std::unique_ptr<TrieTreeNode>> Kids;
};

/// Attaches children for Names[Lo,Hi) — sorted, all sharing a prefix of
/// length Depth, none equal to it — grouping maximal common prefixes.
void buildTrieKids(TrieTreeNode &Parent,
                   const std::vector<std::pair<std::string, uint32_t>> &Names,
                   size_t Lo, size_t Hi, size_t Depth) {
  size_t I = Lo;
  while (I < Hi) {
    char First = Names[I].first[Depth];
    size_t J = I;
    while (J < Hi && Names[J].first[Depth] == First)
      ++J;
    // Longest common prefix of the group beyond Depth.
    size_t Lcp = Names[I].first.size() - Depth;
    for (size_t K = I + 1; K < J; ++K) {
      const std::string &A = Names[I].first;
      const std::string &B = Names[K].first;
      size_t C = 0;
      while (Depth + C < A.size() && Depth + C < B.size() &&
             A[Depth + C] == B[Depth + C])
        ++C;
      Lcp = std::min(Lcp, C);
    }
    auto Kid = std::make_unique<TrieTreeNode>();
    Kid->Frag = Names[I].first.substr(Depth, Lcp);
    size_t NewDepth = Depth + Lcp;
    size_t Start = I;
    if (Names[I].first.size() == NewDepth) {
      Kid->Terminal = true;
      Kid->SymIdx = Names[I].second;
      ++Start;
    }
    buildTrieKids(*Kid, Names, Start, J, NewDepth);
    Parent.Kids.push_back(std::move(Kid));
    I = J;
  }
}

void encodeTrie(const std::vector<SymRec> &Syms, std::string &Blob) {
  std::vector<std::pair<std::string, uint32_t>> Exported;
  for (size_t I = 0; I < Syms.size(); ++I)
    if (Syms[I].Vis == ObjVisibility::Exported)
      Exported.emplace_back(Syms[I].Name, static_cast<uint32_t>(I));
  std::sort(Exported.begin(), Exported.end());
  // A function and a global sharing an exported name collapse to one
  // terminal (the loader compares against the deduplicated name set).
  Exported.erase(std::unique(Exported.begin(), Exported.end(),
                             [](const auto &A, const auto &B) {
                               return A.first == B.first;
                             }),
                 Exported.end());
  if (Exported.empty()) {
    putU32(Blob, 0);
    return;
  }
  TrieTreeNode Root;
  buildTrieKids(Root, Exported, 0, Exported.size(), 0);

  // Breadth-first flatten: children of the Nth emitted node are claimed by
  // one running counter, so FirstChild values are forced, not free.
  std::vector<const TrieTreeNode *> Order;
  Order.push_back(&Root);
  for (size_t I = 0; I < Order.size(); ++I)
    for (const auto &K : Order[I]->Kids)
      Order.push_back(K.get());
  putU32(Blob, static_cast<uint32_t>(Order.size()));
  uint32_t NextChild = 1;
  for (const TrieTreeNode *N : Order) {
    putStr(Blob, N->Frag);
    putU8(Blob, N->Terminal ? 1 : 0);
    putU32(Blob, N->Terminal ? N->SymIdx : 0);
    if (N->Kids.empty()) {
      putU32(Blob, 0);
      putU32(Blob, 0);
    } else {
      putU32(Blob, NextChild);
      putU32(Blob, static_cast<uint32_t>(N->Kids.size()));
      NextChild += static_cast<uint32_t>(N->Kids.size());
    }
  }
}

void encodeRoundStats(std::string &B, const OutlineRoundStats &RS) {
  putU64(B, RS.SequencesOutlined);
  putU64(B, RS.FunctionsCreated);
  putU64(B, RS.OutlinedFunctionBytes);
  putU64(B, RS.CodeSizeBefore);
  putU64(B, RS.CodeSizeAfter);
  putU64(B, RS.PatternsConsidered);
  putU64(B, RS.PatternsUnprofitable);
  putU64(B, RS.CandidatesDroppedSP);
  putU64(B, RS.CandidatesDroppedOverlap);
  putU64(B, RS.FunctionsRemapped);
  putU64(B, RS.LivenessComputed);
  putU64(B, RS.FunctionsEdited);
  putU64(B, RS.PatternsQuarantined);
  putU64(B, RS.RoundsRolledBack);
  putU64(B, RS.CandidatesDroppedHot);
}

void decodeRoundStats(BinReader &R, OutlineRoundStats &RS) {
  RS.SequencesOutlined = R.u64();
  RS.FunctionsCreated = R.u64();
  RS.OutlinedFunctionBytes = R.u64();
  RS.CodeSizeBefore = R.u64();
  RS.CodeSizeAfter = R.u64();
  RS.PatternsConsidered = R.u64();
  RS.PatternsUnprofitable = R.u64();
  RS.CandidatesDroppedSP = R.u64();
  RS.CandidatesDroppedOverlap = R.u64();
  RS.FunctionsRemapped = R.u64();
  RS.LivenessComputed = R.u64();
  RS.FunctionsEdited = R.u64();
  RS.PatternsQuarantined = R.u64();
  RS.RoundsRolledBack = R.u64();
  RS.CandidatesDroppedHot = R.u64();
}

MachineInstr makeInstr(Opcode Op, const MachineOperand *Ops, unsigned N) {
  switch (N) {
  case 0:
    return MachineInstr(Op);
  case 1:
    return MachineInstr(Op, Ops[0]);
  case 2:
    return MachineInstr(Op, Ops[0], Ops[1]);
  case 3:
    return MachineInstr(Op, Ops[0], Ops[1], Ops[2]);
  default:
    return MachineInstr(Op, Ops[0], Ops[1], Ops[2], Ops[3]);
  }
}

struct ContainerParts {
  std::string Bytes;
  /// Offset of the relocation-table count field in Bytes.
  size_t RelocTableOff = 0;
  uint32_t NumRelocs = 0;
};

/// The one writer behind both serialize entry points. Layout is computed
/// from the module alone, with BinaryImage's exact rules for a standalone
/// module: text sequential from TextBase in stored order, data at the next
/// 16 KiB page with 8-byte-aligned globals. (A per-module artifact's
/// addresses are thus "as if linked alone"; the loader verifies them and
/// relocations carry symbol indices, so the final program layout is still
/// BinaryImage's business.)
ContainerParts buildContainer(const Module &M, const SymbolNameFn &NameOf,
                              const std::vector<std::string> *Exports) {
  std::unordered_set<std::string> Extra;
  if (Exports)
    Extra.insert(Exports->begin(), Exports->end());
  auto IsExported = [&](const std::string &N) {
    return isDefaultExportedName(N) || Extra.count(N) != 0;
  };

  StringTable Table(NameOf);
  std::vector<SymRec> Syms;
  std::unordered_map<std::string, uint32_t> FuncIdx, GlobalIdx, UndefIdx;

  // Defined functions: sequential text layout from TextBase.
  uint64_t Addr = BinaryImage::TextBase;
  for (const MachineFunction &MF : M.Functions) {
    SymRec S;
    S.NameIdx = Table.indexOf(MF.Name);
    S.Name = NameOf(MF.Name);
    S.Kind = ObjSymbolKind::Function;
    S.Vis = MF.IsOutlined ? ObjVisibility::Local
            : IsExported(S.Name) ? ObjVisibility::Exported
                                 : ObjVisibility::Global;
    S.Sect = ObjSectText;
    S.Flags = MF.IsOutlined ? 1 : 0;
    S.Frame = static_cast<uint8_t>(MF.FrameKind);
    S.CallSites = MF.OutlinedCallSites;
    S.Origin = MF.OriginModule;
    S.Addr = Addr;
    S.Size = MF.codeSize();
    Addr += S.Size;
    FuncIdx.emplace(S.Name, static_cast<uint32_t>(Syms.size()));
    Syms.push_back(std::move(S));
  }
  const uint64_t CodeBytes = Addr - BinaryImage::TextBase;

  // Defined globals: next page boundary, 8-byte-aligned each.
  const uint64_t DataBase = (Addr + BinaryImage::PageSize - 1) &
                            ~(BinaryImage::PageSize - 1);
  uint64_t DAddr = DataBase;
  for (const GlobalData &G : M.Globals) {
    DAddr = (DAddr + 7) & ~uint64_t(7);
    SymRec S;
    S.NameIdx = Table.indexOf(G.Name);
    S.Name = NameOf(G.Name);
    S.Kind = ObjSymbolKind::Global;
    S.Vis = IsExported(S.Name) ? ObjVisibility::Exported
                               : ObjVisibility::Global;
    S.Sect = ObjSectConst;
    S.Origin = G.OriginModule;
    S.Addr = DAddr;
    S.Size = G.Bytes.size();
    DAddr += S.Size;
    GlobalIdx.emplace(S.Name, static_cast<uint32_t>(Syms.size()));
    Syms.push_back(std::move(S));
  }
  const uint64_t DataBytes = DAddr - DataBase;

  // Text payload + relocation records. Symbol operands are stored zeroed;
  // every one gets a relocation. References to names not defined here
  // (runtime builtins, cross-module callees of a per-module artifact)
  // append undefined symbols in first-use order.
  auto UndefFor = [&](const std::string &Name, uint32_t SymId) -> uint32_t {
    auto It = UndefIdx.find(Name);
    if (It != UndefIdx.end())
      return It->second;
    SymRec S;
    S.NameIdx = Table.indexOf(SymId);
    S.Name = Name;
    S.Kind = ObjSymbolKind::Undefined;
    S.Vis = ObjVisibility::Global;
    S.Sect = ObjSectNone;
    uint32_t Idx = static_cast<uint32_t>(Syms.size());
    UndefIdx.emplace(Name, Idx);
    Syms.push_back(std::move(S));
    return Idx;
  };

  std::string Text;
  std::vector<ObjRelocation> Relocs;
  for (size_t FI = 0; FI < M.Functions.size(); ++FI) {
    const MachineFunction &MF = M.Functions[FI];
    putU32(Text, static_cast<uint32_t>(MF.Blocks.size()));
    uint32_t InstrIdx = 0;
    for (const MachineBasicBlock &MBB : MF.Blocks) {
      putU32(Text, static_cast<uint32_t>(MBB.Instrs.size()));
      for (const MachineInstr &MI : MBB.Instrs) {
        putU8(Text, static_cast<uint8_t>(MI.opcode()));
        putU8(Text, static_cast<uint8_t>(MI.numOperands()));
        for (unsigned OI = 0; OI < MI.numOperands(); ++OI) {
          const MachineOperand &Op = MI.operand(OI);
          putU8(Text, static_cast<uint8_t>(Op.K));
          putU8(Text, static_cast<uint8_t>(Op.R));
          putU8(Text, static_cast<uint8_t>(Op.C));
          if (Op.isSym()) {
            const std::string TName = NameOf(Op.getSym());
            const uint8_t RK = relocKindOf(MI.opcode());
            uint32_t Target;
            if (RK == ObjRelocAdr) {
              auto It = GlobalIdx.find(TName);
              Target = It != GlobalIdx.end() ? It->second
                                             : UndefFor(TName, Op.getSym());
            } else if (RK == ObjRelocCall || RK == ObjRelocTailCall) {
              auto It = FuncIdx.find(TName);
              Target = It != FuncIdx.end() ? It->second
                                           : UndefFor(TName, Op.getSym());
            } else {
              auto FIt = FuncIdx.find(TName);
              auto GIt = GlobalIdx.find(TName);
              Target = FIt != FuncIdx.end()   ? FIt->second
                       : GIt != GlobalIdx.end() ? GIt->second
                                                : UndefFor(TName, Op.getSym());
            }
            ObjRelocation Rl;
            Rl.FuncSym = static_cast<uint32_t>(FI);
            Rl.InstrIdx = InstrIdx;
            Rl.OperandIdx = static_cast<uint8_t>(OI);
            Rl.Kind = RK;
            Rl.TargetSym = Target;
            Relocs.push_back(Rl);
            putI64(Text, 0);
          } else {
            putI64(Text, Op.Val);
          }
        }
        ++InstrIdx;
      }
    }
  }

  // Data payload: the packed vm image of __const (alignment padding
  // included), so filesize == vmsize.
  std::string Data;
  uint64_t Cur = DataBase;
  for (const GlobalData &G : M.Globals) {
    uint64_t A = (Cur + 7) & ~uint64_t(7);
    Data.append(static_cast<size_t>(A - Cur), '\0');
    Data.append(reinterpret_cast<const char *>(G.Bytes.data()),
                G.Bytes.size());
    Cur = A + G.Bytes.size();
  }

  std::string TrieBlob;
  encodeTrie(Syms, TrieBlob);

  std::string SymBlob;
  putU32(SymBlob, static_cast<uint32_t>(Syms.size()));
  for (const SymRec &S : Syms) {
    putU32(SymBlob, S.NameIdx);
    putU8(SymBlob, static_cast<uint8_t>(S.Kind));
    putU8(SymBlob, static_cast<uint8_t>(S.Vis));
    putU8(SymBlob, S.Sect);
    putU8(SymBlob, S.Flags);
    putU8(SymBlob, S.Frame);
    putU8(SymBlob, 0);  // pad
    putU16(SymBlob, 0); // pad
    putU32(SymBlob, S.CallSites);
    putU32(SymBlob, S.Origin);
    putU64(SymBlob, S.Addr);
    putU64(SymBlob, S.Size);
  }

  std::string RelocBlob;
  putU32(RelocBlob, static_cast<uint32_t>(Relocs.size()));
  for (const ObjRelocation &Rl : Relocs) {
    putU32(RelocBlob, Rl.FuncSym);
    putU32(RelocBlob, Rl.InstrIdx);
    putU8(RelocBlob, Rl.OperandIdx);
    putU8(RelocBlob, Rl.Kind);
    putU16(RelocBlob, 0); // pad
    putU32(RelocBlob, Rl.TargetSym);
  }

  std::string StrBlob;
  putU32(StrBlob, static_cast<uint32_t>(Table.strings().size()));
  for (const std::string &S : Table.strings())
    putStr(StrBlob, S);

  // File offsets: everything before the payloads has a known size now.
  auto SegEntryLen = [](const char *Seg, const char *Sect) {
    return (4 + std::strlen(Seg)) + 4 * 8 + 4 + (4 + std::strlen(Sect)) +
           4 * 8;
  };
  const size_t SegsLen = 1 + SegEntryLen(SegTextName, SectTextName) +
                         SegEntryLen(SegDataName, SectConstName);
  const size_t Prefix =
      std::strlen(ObjectFileMagic) + 1 + 4 + M.Name.size();
  const size_t RelocOff =
      Prefix + StrBlob.size() + SegsLen + SymBlob.size() + TrieBlob.size();
  const size_t TextOff = RelocOff + RelocBlob.size();
  const size_t DataOff = TextOff + Text.size();

  std::string Segs;
  putU8(Segs, 2);
  auto PutSeg = [&](const char *Seg, const char *Sect, uint64_t VmAddr,
                    uint64_t VmSize, uint64_t FileOff, uint64_t FileSize) {
    putStr(Segs, Seg);
    putU64(Segs, VmAddr);
    putU64(Segs, VmSize);
    putU64(Segs, FileOff);
    putU64(Segs, FileSize);
    putU32(Segs, 1); // one section per segment
    putStr(Segs, Sect);
    putU64(Segs, VmAddr);
    putU64(Segs, VmSize);
    putU64(Segs, FileOff);
    putU64(Segs, FileSize);
  };
  PutSeg(SegTextName, SectTextName, BinaryImage::TextBase, CodeBytes,
         TextOff, Text.size());
  PutSeg(SegDataName, SectConstName, DataBase, DataBytes, DataOff,
         Data.size());

  ContainerParts Parts;
  std::string &Out = Parts.Bytes;
  Out.reserve(DataOff + Data.size());
  Out += ObjectFileMagic;
  putU8(Out, ObjectFileVersion);
  putStr(Out, M.Name);
  Out += StrBlob;
  Out += Segs;
  Out += SymBlob;
  Out += TrieBlob;
  Out += RelocBlob;
  Out += Text;
  Out += Data;
  Parts.RelocTableOff = RelocOff;
  Parts.NumRelocs = static_cast<uint32_t>(Relocs.size());
  return Parts;
}

} // namespace

bool mco::isDefaultExportedName(const std::string &Name) {
  return Name == "main" || Name == "bench_main" ||
         Name.rfind("span_", 0) == 0;
}

std::string
mco::serializeObjectContent(const Module &M, const SymbolNameFn &NameOf,
                            const std::vector<std::string> *Exports) {
  return buildContainer(M, NameOf, Exports).Bytes;
}

std::string
mco::serializeObjectFile(const Module &M, const RepeatedOutlineStats &Stats,
                         uint64_t RoundsRolledBack,
                         uint64_t PatternsQuarantined,
                         const SymbolNameFn &NameOf,
                         const std::vector<std::string> *Exports) {
  ContainerParts Parts = buildContainer(M, NameOf, Exports);
  std::string &Out = Parts.Bytes;
  putU32(Out, static_cast<uint32_t>(Stats.Rounds.size()));
  for (const OutlineRoundStats &RS : Stats.Rounds)
    encodeRoundStats(Out, RS);
  putU64(Out, RoundsRolledBack);
  putU64(Out, PatternsQuarantined);
  if (Parts.NumRelocs > 0 && faultSiteFires(FaultObjfileRelocGarble)) {
    // Flip the top bit of the first relocation's target index: an
    // always-out-of-range symbol reference the loader's validation must
    // report as a Status (never dereference). Layout: u32 count, then
    // per record the target is the little-endian u32 at +12.
    Out[Parts.RelocTableOff + 4 + 12 + 3] ^= static_cast<char>(0x80);
  }
  return Out;
}

Status mco::validateObjectFileBytes(const std::string &Bytes) {
  // Structure-only FormatValidator walk: the same grammar the decoder
  // consumes, with every range checked, but no object is built and no
  // symbol is interned. readObjectFile repeats the checks it needs for
  // memory safety and adds the semantic layer (layout recomputation,
  // relocation coverage, trie/symbol agreement) on top.
  BinReader R(Bytes);
  auto Fail = [&](const std::string &Why) -> Status {
    if (R.fail())
      return R.status("object file");
    return MCO_CORRUPT("object file: " + Why + " at byte " +
                       std::to_string(R.offset()));
  };

  R.literal(ObjectFileMagic, std::strlen(ObjectFileMagic));
  uint8_t Version = R.u8();
  if (R.fail())
    return Fail("");
  if (Version != ObjectFileVersion)
    return Fail("unsupported version " + std::to_string(Version));
  R.str(); // module name

  uint32_t NumStrings = R.u32();
  if (!R.plausibleCount(NumStrings, 4, "string-table"))
    return Fail("");
  for (uint32_t I = 0; I < NumStrings; ++I) {
    R.str();
    if (R.fail())
      return Fail("");
  }

  uint8_t NumSegs = R.u8();
  if (R.fail())
    return Fail("");
  if (NumSegs != 2)
    return Fail("expected 2 segments");
  const char *SegNames[2] = {SegTextName, SegDataName};
  const char *SectNames[2] = {SectTextName, SectConstName};
  uint64_t SegOff[2] = {0, 0};
  uint64_t SegSize[2] = {0, 0};
  for (unsigned I = 0; I < 2; ++I) {
    std::string SN = R.str();
    if (R.fail())
      return Fail("");
    if (SN != SegNames[I])
      return Fail("bad segment name '" + SN + "'");
    R.u64(); // vmaddr (semantic: checked against recomputed layout)
    R.u64(); // vmsize
    SegOff[I] = R.u64();
    SegSize[I] = R.u64();
    uint32_t NumSects = R.u32();
    if (R.fail())
      return Fail("");
    if (NumSects != 1)
      return Fail("expected 1 section in " + SN);
    std::string SectN = R.str();
    if (R.fail())
      return Fail("");
    if (SectN != SectNames[I])
      return Fail("bad section name '" + SectN + "'");
    R.u64(); // vmaddr
    R.u64(); // vmsize
    uint64_t SOff = R.u64();
    uint64_t SSize = R.u64();
    if (R.fail())
      return Fail("");
    if (SOff != SegOff[I] || SSize != SegSize[I])
      return Fail("section extent disagrees with its segment");
  }

  uint32_t NumSyms = R.u32();
  if (!R.plausibleCount(NumSyms, 36, "symbol"))
    return Fail("");
  uint32_t NumFuncs = 0;
  uint32_t NumExported = 0;
  uint8_t PrevKind = 0;
  for (uint32_t I = 0; I < NumSyms; ++I) {
    if (R.u32() >= NumStrings && !R.fail())
      return Fail("symbol name index out of range");
    uint8_t Kind = R.u8();
    uint8_t Vis = R.u8();
    uint8_t Sect = R.u8();
    uint8_t Flags = R.u8();
    uint8_t Frame = R.u8();
    uint8_t Pad8 = R.u8();
    uint16_t Pad16 = R.u16();
    R.u32(); // OutlinedCallSites
    R.u32(); // OriginModule
    R.u64(); // Addr (semantic)
    R.u64(); // Size (semantic)
    if (R.fail())
      return Fail("");
    if (Kind > static_cast<uint8_t>(ObjSymbolKind::Undefined))
      return Fail("invalid symbol kind");
    if (Vis > static_cast<uint8_t>(ObjVisibility::Exported))
      return Fail("invalid symbol visibility");
    if (Flags > 1)
      return Fail("invalid symbol flags");
    if (Frame > static_cast<uint8_t>(OutlinedFrameKind::Thunk))
      return Fail("invalid frame kind");
    if (Pad8 != 0 || Pad16 != 0)
      return Fail("nonzero symbol padding");
    const bool SectOk =
        (Kind == static_cast<uint8_t>(ObjSymbolKind::Function) &&
         Sect == ObjSectText) ||
        (Kind == static_cast<uint8_t>(ObjSymbolKind::Global) &&
         Sect == ObjSectConst) ||
        (Kind == static_cast<uint8_t>(ObjSymbolKind::Undefined) &&
         Sect == ObjSectNone);
    if (!SectOk)
      return Fail("symbol kind/section mismatch");
    if (Kind == static_cast<uint8_t>(ObjSymbolKind::Undefined) &&
        Vis == static_cast<uint8_t>(ObjVisibility::Exported))
      return Fail("undefined symbol cannot be exported");
    if (Kind < PrevKind)
      return Fail("symbols not ordered functions/globals/undefined");
    PrevKind = Kind;
    if (Kind == static_cast<uint8_t>(ObjSymbolKind::Function))
      ++NumFuncs;
    if (Vis == static_cast<uint8_t>(ObjVisibility::Exported))
      ++NumExported;
  }

  // Export trie: breadth-first node layout proven tree-shaped by one
  // running child counter — no index can be claimed twice, so a reader's
  // traversal cannot cycle or recurse unboundedly.
  uint32_t NumNodes = R.u32();
  if (!R.plausibleCount(NumNodes, 17, "export-trie node"))
    return Fail("");
  if (NumNodes == 0 && NumExported != 0)
    return Fail("exported symbols but empty export trie");
  uint64_t NextChild = 1;
  uint32_t NumTerminals = 0;
  for (uint32_t I = 0; I < NumNodes; ++I) {
    std::string Frag = R.str();
    uint8_t Terminal = R.u8();
    uint32_t SymIdx = R.u32();
    uint32_t FirstChild = R.u32();
    uint32_t NumChildren = R.u32();
    if (R.fail())
      return Fail("");
    if (I == 0 && (!Frag.empty() || Terminal))
      return Fail("trie root must be a non-terminal empty fragment");
    if (I > 0 && Frag.empty())
      return Fail("empty trie fragment");
    if (Terminal > 1)
      return Fail("invalid trie terminal flag");
    if (Terminal) {
      if (SymIdx >= NumSyms)
        return Fail("trie symbol index out of range");
      ++NumTerminals;
    } else if (SymIdx != 0) {
      return Fail("non-terminal trie node carries a symbol");
    }
    if (NumChildren == 0) {
      if (FirstChild != 0)
        return Fail("leaf trie node claims children");
    } else {
      if (FirstChild != NextChild)
        return Fail("trie layout not breadth-first");
      NextChild += NumChildren;
      if (NextChild > NumNodes)
        return Fail("trie children out of range");
    }
  }
  if (NumNodes > 0 && NextChild != NumNodes)
    return Fail("unclaimed trie nodes");

  uint32_t NumRelocs = R.u32();
  if (!R.plausibleCount(NumRelocs, 16, "relocation"))
    return Fail("");
  for (uint32_t I = 0; I < NumRelocs; ++I) {
    uint32_t FuncSym = R.u32();
    R.u32(); // InstrIdx (checked against the decoded body by the reader)
    uint8_t OperandIdx = R.u8();
    uint8_t Kind = R.u8();
    uint16_t Pad = R.u16();
    uint32_t Target = R.u32();
    if (R.fail())
      return Fail("");
    if (FuncSym >= NumFuncs)
      return Fail("relocation function index out of range");
    if (OperandIdx >= MachineInstr::MaxOperands)
      return Fail("relocation operand index out of range");
    if (Kind > ObjRelocOther)
      return Fail("invalid relocation kind");
    if (Pad != 0)
      return Fail("nonzero relocation padding");
    if (Target >= NumSyms)
      return Fail("relocation target out of range");
  }

  // Text payload: must start exactly where __TEXT's fileoff says.
  if (R.offset() != SegOff[0])
    return Fail("__TEXT fileoff disagrees with payload position");
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    uint32_t NumBlocks = R.u32();
    if (!R.plausibleCount(NumBlocks, 4, "block"))
      return Fail("");
    for (uint32_t BI = 0; BI < NumBlocks; ++BI) {
      uint32_t NumInstrs = R.u32();
      if (!R.plausibleCount(NumInstrs, 2, "instruction"))
        return Fail("");
      for (uint32_t II = 0; II < NumInstrs; ++II) {
        uint8_t OpByte = R.u8();
        if (OpByte > static_cast<uint8_t>(Opcode::NOP) && !R.fail())
          return Fail("invalid opcode");
        uint8_t NumOps = R.u8();
        if (NumOps > MachineInstr::MaxOperands && !R.fail())
          return Fail("invalid operand count");
        for (uint8_t OI = 0; OI < NumOps; ++OI) {
          uint8_t Kind = R.u8();
          if (Kind > static_cast<uint8_t>(MachineOperand::Kind::CondK) &&
              !R.fail())
            return Fail("invalid operand kind");
          uint8_t RegByte = R.u8();
          if (RegByte >= static_cast<uint8_t>(Reg::NumRegs) &&
              RegByte != static_cast<uint8_t>(Reg::None) && !R.fail())
            return Fail("invalid register");
          uint8_t CondByte = R.u8();
          if (CondByte > static_cast<uint8_t>(Cond::HS) && !R.fail())
            return Fail("invalid condition");
          int64_t Val = R.i64();
          if (Kind == static_cast<uint8_t>(MachineOperand::Kind::Symbol) &&
              !R.fail() && Val != 0)
            return Fail("symbol operand not stored zeroed for relocation");
        }
        if (R.fail())
          return Fail("");
      }
    }
  }
  if (R.fail())
    return Fail("");
  if (R.offset() != SegOff[0] + SegSize[0])
    return Fail("__TEXT filesize disagrees with payload");

  // Data payload.
  if (R.offset() != SegOff[1])
    return Fail("__DATA fileoff disagrees with payload position");
  R.bytes(static_cast<size_t>(SegSize[1]));
  if (R.fail())
    return Fail("");

  uint32_t NumRounds = R.u32();
  if (!R.plausibleCount(NumRounds, 15 * 8, "round-stats"))
    return Fail("");
  for (uint64_t RI = 0; RI < uint64_t(NumRounds) * 15; ++RI)
    R.u64();
  R.u64(); // RoundsRolledBack
  R.u64(); // PatternsQuarantined

  if (R.fail())
    return Fail("");
  if (!R.atEnd())
    return Fail("trailing bytes after object file");
  return Status::success();
}

Expected<LoadedObject> mco::readObjectFile(const std::string &Bytes) {
  // FormatValidator pass first: every structural range below is already
  // proven, so the decode is straight-line.
  if (Status V = validateObjectFileBytes(Bytes); !V.ok())
    return V;

  BinReader R(Bytes);
  auto Corrupt = [](const std::string &Why) -> Status {
    return MCO_CORRUPT("object file: " + Why);
  };

  R.literal(ObjectFileMagic, std::strlen(ObjectFileMagic));
  R.u8(); // version

  LoadedObject O;
  O.ModuleName = R.str();

  uint32_t NumStrings = R.u32();
  std::vector<std::string> Strings(NumStrings);
  for (uint32_t I = 0; I < NumStrings; ++I)
    Strings[I] = R.str();

  R.u8(); // nsegs == 2
  O.Sections.resize(2);
  for (unsigned I = 0; I < 2; ++I) {
    ObjSectionInfo &Sect = O.Sections[I];
    Sect.Segment = R.str();
    R.u64(); // segment vmaddr (== section's)
    R.u64();
    R.u64();
    R.u64();
    R.u32(); // nsects == 1
    Sect.Name = R.str();
    Sect.VmAddr = R.u64();
    Sect.VmSize = R.u64();
    Sect.FileOff = R.u64();
    Sect.FileSize = R.u64();
  }

  uint32_t NumSyms = R.u32();
  O.Symbols.resize(NumSyms);
  uint32_t NumFuncs = 0;
  for (uint32_t I = 0; I < NumSyms; ++I) {
    ObjSymbol &S = O.Symbols[I];
    S.Name = Strings[R.u32()];
    S.Kind = static_cast<ObjSymbolKind>(R.u8());
    S.Vis = static_cast<ObjVisibility>(R.u8());
    S.Section = R.u8();
    S.IsOutlined = (R.u8() & 1) != 0;
    S.FrameKind = static_cast<OutlinedFrameKind>(R.u8());
    R.u8();  // pad
    R.u16(); // pad
    S.OutlinedCallSites = R.u32();
    S.OriginModule = R.u32();
    S.Addr = R.u64();
    S.Size = R.u64();
    if (S.Kind == ObjSymbolKind::Function)
      ++NumFuncs;
  }

  struct TrieNode {
    std::string Frag;
    bool Terminal;
    uint32_t SymIdx;
    uint32_t FirstChild;
    uint32_t NumChildren;
  };
  uint32_t NumNodes = R.u32();
  std::vector<TrieNode> Trie(NumNodes);
  for (uint32_t I = 0; I < NumNodes; ++I) {
    Trie[I].Frag = R.str();
    Trie[I].Terminal = R.u8() != 0;
    Trie[I].SymIdx = R.u32();
    Trie[I].FirstChild = R.u32();
    Trie[I].NumChildren = R.u32();
  }

  uint32_t NumRelocs = R.u32();
  O.Relocations.resize(NumRelocs);
  for (uint32_t I = 0; I < NumRelocs; ++I) {
    ObjRelocation &Rl = O.Relocations[I];
    Rl.FuncSym = R.u32();
    Rl.InstrIdx = R.u32();
    Rl.OperandIdx = R.u8();
    Rl.Kind = R.u8();
    R.u16(); // pad
    Rl.TargetSym = R.u32();
  }

  O.FunctionBodies.resize(NumFuncs);
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    uint32_t NumBlocks = R.u32();
    O.FunctionBodies[FI].resize(NumBlocks);
    for (uint32_t BI = 0; BI < NumBlocks; ++BI) {
      MachineBasicBlock &MBB = O.FunctionBodies[FI][BI];
      uint32_t NumInstrs = R.u32();
      MBB.Instrs.reserve(NumInstrs);
      for (uint32_t II = 0; II < NumInstrs; ++II) {
        uint8_t OpByte = R.u8();
        uint8_t NumOps = R.u8();
        MachineOperand Ops[MachineInstr::MaxOperands];
        for (uint8_t OI = 0; OI < NumOps; ++OI) {
          MachineOperand &Op = Ops[OI];
          Op.K = static_cast<MachineOperand::Kind>(R.u8());
          Op.R = static_cast<Reg>(R.u8());
          Op.C = static_cast<Cond>(R.u8());
          Op.Val = R.i64();
        }
        MBB.push(makeInstr(static_cast<Opcode>(OpByte), Ops, NumOps));
      }
    }
  }

  O.DataPayload = R.bytes(static_cast<size_t>(O.Sections[1].FileSize));

  uint32_t NumRounds = R.u32();
  O.Stats.Rounds.resize(NumRounds);
  for (uint32_t RI = 0; RI < NumRounds; ++RI)
    decodeRoundStats(R, O.Stats.Rounds[RI]);
  O.RoundsRolledBack = R.u64();
  O.PatternsQuarantined = R.u64();
  if (R.fail())
    return R.status("object file");

  //===--------------------------------------------------------------------===//
  // Semantic layer: the structure parses; now every cross-reference and
  // every layout claim must agree with what this loader would compute.
  //===--------------------------------------------------------------------===//

  // (1) Addresses are deterministic: recompute the standalone layout and
  // compare every recorded address and size.
  uint64_t Addr = BinaryImage::TextBase;
  uint32_t FuncI = 0;
  for (const ObjSymbol &S : O.Symbols) {
    if (S.Kind != ObjSymbolKind::Function)
      continue;
    uint64_t Instrs = 0;
    for (const MachineBasicBlock &MBB : O.FunctionBodies[FuncI])
      Instrs += MBB.size();
    const uint64_t Sz = Instrs * InstrBytes;
    if (S.Addr != Addr || S.Size != Sz)
      return Corrupt("function '" + S.Name +
                     "' address/size disagrees with deterministic layout");
    Addr += Sz;
    ++FuncI;
  }
  const uint64_t CodeBytes = Addr - BinaryImage::TextBase;
  if (O.Sections[0].VmAddr != BinaryImage::TextBase ||
      O.Sections[0].VmSize != CodeBytes)
    return Corrupt("__text extent disagrees with laid-out code");

  const uint64_t DataBase = (Addr + BinaryImage::PageSize - 1) &
                            ~(BinaryImage::PageSize - 1);
  const uint64_t PayloadSize = O.DataPayload.size();
  uint64_t DAddr = DataBase;
  for (const ObjSymbol &S : O.Symbols) {
    if (S.Kind != ObjSymbolKind::Global)
      continue;
    DAddr = (DAddr + 7) & ~uint64_t(7);
    if (DAddr - DataBase > PayloadSize ||
        S.Size > PayloadSize - (DAddr - DataBase))
      return Corrupt("global '" + S.Name + "' overruns the data payload");
    if (S.Addr != DAddr)
      return Corrupt("global '" + S.Name +
                     "' address disagrees with deterministic layout");
    DAddr += S.Size;
  }
  const uint64_t DataBytes = DAddr - DataBase;
  if (O.Sections[1].VmAddr != DataBase || O.Sections[1].VmSize != DataBytes ||
      DataBytes != PayloadSize)
    return Corrupt("__const extent disagrees with laid-out data");

  // (2) Undefined symbols carry no storage; defined names are unique
  // within their kind (exactly what BinaryImage will demand later).
  std::unordered_set<std::string> FuncNames, GlobalNames;
  for (const ObjSymbol &S : O.Symbols) {
    if (S.Kind == ObjSymbolKind::Undefined) {
      if (S.Addr != 0 || S.Size != 0)
        return Corrupt("undefined symbol '" + S.Name + "' has storage");
      continue;
    }
    auto &Set = S.Kind == ObjSymbolKind::Function ? FuncNames : GlobalNames;
    if (!Set.insert(S.Name).second)
      return Corrupt("duplicate symbol '" + S.Name + "'");
  }

  // (3) Relocate: each symbol operand must be assigned by exactly one
  // in-range record whose kind agrees with the opcode; the target's kind
  // must be one the opcode can reference. Until a record lands, operands
  // hold the zero the writer stored.
  std::vector<std::vector<MachineInstr *>> Flat(NumFuncs);
  std::vector<std::vector<uint8_t>> Covered(NumFuncs);
  for (uint32_t FI = 0; FI < NumFuncs; ++FI) {
    for (MachineBasicBlock &MBB : O.FunctionBodies[FI])
      for (MachineInstr &MI : MBB.Instrs)
        Flat[FI].push_back(&MI);
    Covered[FI].assign(Flat[FI].size(), 0);
  }
  for (const ObjRelocation &Rl : O.Relocations) {
    if (Rl.InstrIdx >= Flat[Rl.FuncSym].size())
      return Corrupt("relocation instruction index out of range");
    MachineInstr &MI = *Flat[Rl.FuncSym][Rl.InstrIdx];
    if (Rl.OperandIdx >= MI.numOperands())
      return Corrupt("relocation operand index out of range");
    MachineOperand &Op = MI.operand(Rl.OperandIdx);
    if (!Op.isSym())
      return Corrupt("relocation targets a non-symbol operand");
    if (relocKindOf(MI.opcode()) != Rl.Kind)
      return Corrupt("relocation kind disagrees with its opcode");
    const ObjSymbolKind TK = O.Symbols[Rl.TargetSym].Kind;
    if ((Rl.Kind == ObjRelocCall || Rl.Kind == ObjRelocTailCall) &&
        TK == ObjSymbolKind::Global)
      return Corrupt("call relocation targets a data symbol");
    if (Rl.Kind == ObjRelocAdr && TK == ObjSymbolKind::Function)
      return Corrupt("address relocation targets a function symbol");
    uint8_t &Bits = Covered[Rl.FuncSym][Rl.InstrIdx];
    const uint8_t Bit = static_cast<uint8_t>(1u << Rl.OperandIdx);
    if (Bits & Bit)
      return Corrupt("operand relocated twice");
    Bits |= Bit;
    Op.Val = Rl.TargetSym;
  }
  for (uint32_t FI = 0; FI < NumFuncs; ++FI)
    for (size_t II = 0; II < Flat[FI].size(); ++II) {
      const MachineInstr &MI = *Flat[FI][II];
      for (unsigned OI = 0; OI < MI.numOperands(); ++OI)
        if (MI.operand(OI).isSym() &&
            !(Covered[FI][II] & (1u << OI)))
          return Corrupt("symbol operand not covered by a relocation");
    }

  // (4) The export trie must spell out exactly the exported symbol names,
  // sorted. The breadth-first layout proven by the validator makes this
  // walk cycle-free; an explicit stack keeps hostile depth from becoming
  // native recursion.
  if (NumNodes > 0) {
    std::vector<std::pair<uint32_t, std::string>> Stack;
    Stack.emplace_back(0, std::string());
    while (!Stack.empty()) {
      auto [Idx, Prefix] = std::move(Stack.back());
      Stack.pop_back();
      const TrieNode &N = Trie[Idx];
      std::string Full = Prefix + N.Frag;
      if (N.Terminal) {
        const ObjSymbol &S = O.Symbols[N.SymIdx];
        if (S.Name != Full || S.Vis != ObjVisibility::Exported)
          return Corrupt("export trie entry '" + Full +
                         "' disagrees with the symbol table");
        O.ExportedNames.push_back(Full);
      }
      for (uint32_t C = N.NumChildren; C > 0; --C)
        Stack.emplace_back(N.FirstChild + C - 1, Full);
    }
  }
  for (size_t I = 1; I < O.ExportedNames.size(); ++I)
    if (!(O.ExportedNames[I - 1] < O.ExportedNames[I]))
      return Corrupt("export trie names not sorted");
  std::vector<std::string> Expected;
  for (const ObjSymbol &S : O.Symbols)
    if (S.Vis == ObjVisibility::Exported)
      Expected.push_back(S.Name);
  std::sort(Expected.begin(), Expected.end());
  Expected.erase(std::unique(Expected.begin(), Expected.end()),
                 Expected.end());
  if (Expected != O.ExportedNames)
    return Corrupt("export trie disagrees with exported symbols");

  return O;
}

Expected<ModuleArtifact> mco::toModuleArtifact(const LoadedObject &O,
                                               SymbolInterner &Syms) {
  ModuleArtifact A;
  A.M.Name = O.ModuleName;
  A.Stats = O.Stats;
  A.RoundsRolledBack = O.RoundsRolledBack;
  A.PatternsQuarantined = O.PatternsQuarantined;

  std::vector<uint32_t> IdOf(O.Symbols.size());
  for (size_t I = 0; I < O.Symbols.size(); ++I)
    IdOf[I] = Syms.internSymbol(O.Symbols[I].Name);

  const uint64_t DataBase = O.Sections[1].VmAddr;
  size_t FuncI = 0;
  for (size_t I = 0; I < O.Symbols.size(); ++I) {
    const ObjSymbol &S = O.Symbols[I];
    if (S.Kind == ObjSymbolKind::Function) {
      MachineFunction MF;
      MF.Name = IdOf[I];
      MF.IsOutlined = S.IsOutlined;
      MF.FrameKind = S.FrameKind;
      MF.OutlinedCallSites = S.OutlinedCallSites;
      MF.OriginModule = S.OriginModule;
      MF.Blocks = O.FunctionBodies[FuncI++];
      for (MachineBasicBlock &MBB : MF.Blocks)
        for (MachineInstr &MI : MBB.Instrs)
          for (unsigned OI = 0; OI < MI.numOperands(); ++OI) {
            MachineOperand &Op = MI.operand(OI);
            if (!Op.isSym())
              continue;
            const uint32_t Idx = Op.getSym();
            if (Idx >= IdOf.size())
              return MCO_CORRUPT("object file: unrelocated symbol operand");
            Op = MachineOperand::sym(IdOf[Idx]);
          }
      A.M.Functions.push_back(std::move(MF));
    } else if (S.Kind == ObjSymbolKind::Global) {
      GlobalData G;
      G.Name = IdOf[I];
      G.OriginModule = S.OriginModule;
      const size_t Off = static_cast<size_t>(S.Addr - DataBase);
      G.Bytes.assign(O.DataPayload.begin() + Off,
                     O.DataPayload.begin() + Off +
                         static_cast<size_t>(S.Size));
      A.M.Globals.push_back(std::move(G));
    }
  }
  return A;
}

Expected<ModuleArtifact> mco::deserializeObjectFile(const std::string &Bytes,
                                                    SymbolInterner &Syms) {
  Expected<LoadedObject> O = readObjectFile(Bytes);
  if (!O.ok())
    return O.status();
  return toModuleArtifact(*O, Syms);
}
