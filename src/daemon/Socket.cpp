//===- daemon/Socket.cpp - Unix-domain socket helpers ---------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "daemon/Socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mco;

namespace {

Status fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return MCO_ERROR("socket path too long: '" + Path + "'");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::success();
}

} // namespace

Expected<int> mco::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (Status S = fillAddr(Path, Addr); !S.ok())
    return S;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return MCO_ERROR(std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(Path.c_str()); // Stale socket from a killed daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status S = MCO_ERROR("bind('" + Path + "') failed: " +
                         std::strerror(errno));
    ::close(Fd);
    return S;
  }
  if (::listen(Fd, Backlog) != 0) {
    Status S = MCO_ERROR("listen('" + Path + "') failed: " +
                         std::strerror(errno));
    ::close(Fd);
    return S;
  }
  return Fd;
}

Expected<int> mco::acceptUnix(int ListenFd, int TimeoutMs) {
  struct pollfd PFd = {ListenFd, POLLIN, 0};
  int R = ::poll(&PFd, 1, TimeoutMs);
  if (R == 0)
    return -1; // Timeout: the accept loop re-checks its stop flag.
  if (R < 0) {
    if (errno == EINTR)
      return -1;
    return MCO_ERROR(std::string("poll(listen) failed: ") +
                     std::strerror(errno));
  }
  int Fd = ::accept(ListenFd, nullptr, nullptr);
  if (Fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED)
      return -1; // The would-be peer is already gone; keep serving.
    return MCO_ERROR(std::string("accept() failed: ") + std::strerror(errno));
  }
  return Fd;
}

Expected<int> mco::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Status S = fillAddr(Path, Addr); !S.ok())
    return S;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return MCO_ERROR(std::string("socket() failed: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    // Transient: the daemon may simply be restarting; the idempotent
    // request id makes a retry safe, and tools exit 75 ("try again").
    Status S = MCO_TRANSIENT("connect('" + Path + "') failed: " +
                             std::strerror(errno));
    ::close(Fd);
    return S;
  }
  return Fd;
}

void mco::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
