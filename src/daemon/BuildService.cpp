//===- daemon/BuildService.cpp - The mco-buildd daemon core ---------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "daemon/BuildService.h"

#include "cache/ArtifactCache.h"
#include "daemon/Socket.h"
#include "pipeline/BuildPipeline.h"
#include "support/FaultInjection.h"
#include "support/FormatValidator.h"
#include "synth/CorpusSynthesizer.h"
#include "telemetry/Tracer.h"

#include <chrono>
#include <exception>
#include <future>

using namespace mco;

namespace {

/// Client-chosen ids become path components and journal tokens, so the
/// protocol boundary is strict: short, and nothing but [A-Za-z0-9._-]
/// (the journal loader re-checks the same invariant on replay).
bool validRequestId(const std::string &Id) {
  return validate::isRequestIdToken(Id);
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Spends time at the `daemon.request.hang` site until the request
/// watchdog's cancel arrives; capped so an unwatched daemon degrades the
/// request instead of wedging a worker forever.
void hangUntilCancelled(const std::atomic<bool> *Cancel) {
  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      throw InjectedFault(FaultDaemonRequestHang);
    if (secondsSince(Start) > 10.0)
      throw InjectedFault(FaultDaemonRequestHang);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

enum class DeadlineOutcome { Completed, TimedOut, Failed };

/// Same discipline as the pipeline's per-module watchdog: run \p Body on
/// its own thread, raise \p Cancel on overrun, and join — the join is
/// bounded by the distance to the next cooperative poll point (the hang
/// site polls every 2 ms; the build is bounded by its module watchdogs).
DeadlineOutcome runWithDeadline(uint64_t Ms, std::atomic<bool> &Cancel,
                                const std::function<void()> &Body,
                                std::exception_ptr &Err) {
  auto Done = std::make_shared<std::promise<void>>();
  std::future<void> F = Done->get_future();
  std::thread T([&Body, Done] {
    try {
      Body();
      Done->set_value();
    } catch (...) {
      Done->set_exception(std::current_exception());
    }
  });
  if (F.wait_for(std::chrono::milliseconds(Ms)) ==
      std::future_status::timeout)
    Cancel.store(true, std::memory_order_relaxed);
  T.join();
  try {
    F.get();
    return DeadlineOutcome::Completed;
  } catch (const InjectedFault &E) {
    if (E.site() == FaultDaemonRequestHang &&
        Cancel.load(std::memory_order_relaxed))
      return DeadlineOutcome::TimedOut;
    Err = std::current_exception();
    return DeadlineOutcome::Failed;
  } catch (...) {
    Err = std::current_exception();
    return DeadlineOutcome::Failed;
  }
}

RpcMessage errorMessage(const std::string &Why, bool Retryable) {
  RpcMessage M;
  M.Type = "error";
  M.Str["message"] = Why;
  M.Int["retryable"] = Retryable ? 1 : 0;
  return M;
}

AppProfile profileByName(const std::string &Name) {
  if (Name == "driver")
    return AppProfile::uberDriver();
  if (Name == "eats")
    return AppProfile::uberEats();
  if (Name == "clang")
    return AppProfile::clangCompiler();
  if (Name == "kernel")
    return AppProfile::linuxKernel();
  return AppProfile::uberRider();
}

} // namespace

BuildService::~BuildService() {
  requestStop();
  if (!Workers.empty() || !Conns.empty()) {
    // serve() normally joins these; cover the start()-without-serve()
    // paths (test harness errors) too.
    for (std::thread &T : Workers)
      if (T.joinable())
        T.join();
    for (std::thread &T : Conns)
      if (T.joinable())
        T.join();
  }
  closeFd(ListenFd);
}

std::string BuildService::requestDir(const std::string &Id) const {
  return Opts.StateDir + "/requests/" + Id;
}

Status BuildService::start() {
  if (Status S = ensureDir(Opts.StateDir); !S.ok())
    return S;
  if (Status S = ensureDir(Opts.StateDir + "/requests"); !S.ok())
    return S;
  // One daemon per state dir. A SIGKILLed daemon leaves a dead-owner lock
  // the restart steals (FileLock stale recovery).
  if (Status S = DaemonLock.acquire(Opts.StateDir + "/daemon.lock"); !S.ok())
    return S;
  if (Status S = Requests.open(Opts.StateDir + "/requests.mcoj"); !S.ok())
    return S;
  if (Opts.Resume)
    if (Status S = resumeOutstanding(); !S.ok())
      return S;
  Expected<int> L = listenUnix(Opts.SocketPath, 64);
  if (!L.ok())
    return L.status();
  ListenFd = *L;
  for (unsigned I = 0; I < std::max(1u, Opts.Workers); ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return Status::success();
}

Status BuildService::resumeOutstanding() {
  RequestResumeState RS =
      RequestResumeState::load(Opts.StateDir + "/requests.mcoj");
  if (!RS.Valid)
    return Status::success(); // Fresh state dir: nothing to replay.
  for (const std::string &Id : RS.Unfinished) {
    Expected<std::string> Bytes =
        readFileBytes(requestDir(Id) + "/request.json");
    if (!Bytes.ok()) {
      // recv was journaled but the crash beat request.json's rename (or
      // the dir was damaged): the request cannot be replayed; close it
      // out so the client's retry re-submits cleanly.
      Requests.recordFailed(Id);
      continue;
    }
    Expected<RpcMessage> Req = decodeRpcMessage(*Bytes);
    if (!Req.ok()) {
      Requests.recordFailed(Id);
      continue;
    }
    auto St = std::make_shared<RequestState>();
    St->Request = *Req;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      States[Id] = St;
      Queue.push_back(Id);
    }
    Stats.RequestsResumed.fetch_add(1, std::memory_order_relaxed);
  }
  QueueCv.notify_all();
  return Status::success();
}

void BuildService::requestStop() {
  Stop.store(true, std::memory_order_relaxed);
  QueueCv.notify_all();
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Id, St] : States)
    St->Cv.notify_all();
}

size_t BuildService::pendingRequests() {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &[Id, St] : States)
    N += St->Ph != RequestState::Terminal;
  return N;
}

void BuildService::serve() {
  acceptLoop();
  // Past here Stop is set: drain the worker pool and every connection
  // handler before returning to the tool's main().
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &[Id, St] : States)
      St->Cv.notify_all();
  }
  for (std::thread &T : Conns)
    T.join();
  Conns.clear();
  closeFd(ListenFd);
  ListenFd = -1;
}

void BuildService::acceptLoop() {
  while (!stopRequested()) {
    Expected<int> C = acceptUnix(ListenFd, Opts.AcceptPollMs);
    if (!C.ok())
      return; // The listen socket itself broke; nothing left to serve.
    if (*C < 0)
      continue; // Poll timeout: re-check stop.
    int Fd = *C;
    Conns.emplace_back([this, Fd] { handleConnection(Fd); });
  }
}

void BuildService::handleConnection(int Fd) {
  // One frame-recv at a time; a client may pipeline several requests on
  // one connection (the bench does).
  while (!stopRequested()) {
    Expected<std::string> Frame = recvFrame(Fd, Opts.FrameTimeoutMs);
    if (!Frame.ok()) {
      // EOF, reset, injected drop, or an idle client: all end the
      // connection, never the daemon.
      Stats.ConnDropped.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Expected<RpcMessage> M = decodeRpcMessage(*Frame);
    if (!M.ok()) {
      // A frame that arrived intact but does not decode is protocol
      // damage from THIS client (garbled bytes, wrong wire format). Tell
      // it why with a fatal (non-retryable) error, then close the
      // connection; the worker and every other connection keep serving.
      Stats.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      (void)sendMessage(
          Fd, errorMessage("malformed frame: " + M.status().message(),
                           /*Retryable=*/false));
      break;
    }
    if (M->Type == "hello") {
      RpcMessage R;
      if (M->strOr("proto", "") == RpcProtocolId) {
        R.Type = "hello_ok";
        R.Str["proto"] = RpcProtocolId;
      } else {
        R = errorMessage("unsupported protocol '" + M->strOr("proto", "") +
                             "' (daemon speaks " + RpcProtocolId + ")",
                         /*Retryable=*/false);
      }
      if (!sendMessage(Fd, R).ok())
        break;
    } else if (M->Type == "ping") {
      RpcMessage R;
      R.Type = "pong";
      if (!sendMessage(Fd, R).ok())
        break;
    } else if (M->Type == "stats") {
      RpcMessage R;
      R.Type = "stats_ok";
      R.Int["requests_received"] = int64_t(Stats.RequestsReceived.load());
      R.Int["requests_completed"] = int64_t(Stats.RequestsCompleted.load());
      R.Int["requests_degraded"] = int64_t(Stats.RequestsDegraded.load());
      R.Int["requests_failed"] = int64_t(Stats.RequestsFailed.load());
      R.Int["requests_rejected"] = int64_t(Stats.RequestsRejected.load());
      R.Int["requests_resumed"] = int64_t(Stats.RequestsResumed.load());
      R.Int["requests_attached"] = int64_t(Stats.RequestsAttached.load());
      R.Int["results_reserved"] = int64_t(Stats.ResultsReserved.load());
      R.Int["conn_dropped"] = int64_t(Stats.ConnDropped.load());
      R.Int["malformed_frames"] = int64_t(Stats.MalformedFrames.load());
      R.Int["worker_crashes"] = int64_t(Stats.WorkerCrashes.load());
      R.Int["request_watchdog_cancels"] =
          int64_t(Stats.RequestWatchdogCancels.load());
      R.Int["request_watchdog_retries"] =
          int64_t(Stats.RequestWatchdogRetries.load());
      R.Int["cache_hits"] = int64_t(Stats.CacheHits.load());
      R.Int["cache_misses"] = int64_t(Stats.CacheMisses.load());
      R.Int["cache_corrupt"] = int64_t(Stats.CacheCorrupt.load());
      R.Int["pending"] = int64_t(pendingRequests());
      if (!sendMessage(Fd, R).ok())
        break;
    } else if (M->Type == "shutdown") {
      RpcMessage R;
      R.Type = "shutdown_ok";
      (void)sendMessage(Fd, R);
      requestStop();
      break;
    } else if (M->Type == "build") {
      handleBuild(Fd, *M);
    } else {
      if (!sendMessage(Fd, errorMessage("unknown message type '" + M->Type +
                                            "'",
                                        /*Retryable=*/false))
               .ok())
        break;
    }
  }
  closeFd(Fd);
}

void BuildService::handleBuild(int Fd, const RpcMessage &Req) {
  const std::string Id = Req.strOr("id", "");
  if (!validRequestId(Id)) {
    (void)sendMessage(
        Fd, errorMessage("invalid request id", /*Retryable=*/false));
    return;
  }
  Stats.RequestsReceived.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<RequestState> St;
  bool Fresh = false;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    auto It = States.find(Id);
    if (It != States.end() && It->second->Ph == RequestState::Terminal &&
        It->second->Result.Type != "result") {
      // The previous attempt under this id failed (worker crash, injected
      // fault). A failed id is re-submittable: only durable *results* are
      // idempotently re-served. Earlier waiters already got the error.
      States.erase(It);
      It = States.end();
    }
    if (It != States.end()) {
      St = It->second;
      Stats.RequestsAttached.fetch_add(1, std::memory_order_relaxed);
    } else {
      // A restarted daemon may hold this id's result only on disk.
      Expected<std::string> Durable =
          readFileBytes(requestDir(Id) + "/result.json");
      if (Durable.ok()) {
        if (Expected<RpcMessage> R = decodeRpcMessage(*Durable); R.ok()) {
          St = std::make_shared<RequestState>();
          St->Ph = RequestState::Terminal;
          St->Result = *R;
          States[Id] = St;
          Stats.ResultsReserved.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!St) {
        // Admission control: a full queue (or the injected overflow)
        // pushes back instead of buffering unboundedly.
        if (Queue.size() >= Opts.QueueLimit ||
            faultSiteFires(FaultDaemonQueueOverflow)) {
          Stats.RequestsRejected.fetch_add(1, std::memory_order_relaxed);
          Lock.unlock();
          RpcMessage R;
          R.Type = "retry_after";
          R.Int["millis"] = 50;
          (void)sendMessage(Fd, R);
          return;
        }
        St = std::make_shared<RequestState>();
        St->Request = Req;
        States[Id] = St;
        Fresh = true;
      }
    }
  }

  if (Fresh) {
    // Durability order: request.json first, `recv` second — a crash
    // between the two leaves no record, and the client's retry
    // re-submits; the reverse order could journal a request that can
    // never be replayed.
    Status S = ensureDir(requestDir(Id));
    if (S.ok())
      S = atomicWriteFile(requestDir(Id) + "/request.json",
                          encodeRpcMessage(Req));
    if (!S.ok()) {
      {
        std::lock_guard<std::mutex> Lock(Mu);
        States.erase(Id);
      }
      (void)sendMessage(
          Fd, errorMessage("cannot persist request: " + S.message(),
                           /*Retryable=*/true));
      return;
    }
    Requests.recordReceived(Id);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Queue.push_back(Id);
    }
    QueueCv.notify_one();
  }

  // Block this connection until the request is terminal, then reply. An
  // attached re-submission takes the exact same path — one build, many
  // replies.
  {
    std::unique_lock<std::mutex> Lock(Mu);
    St->Cv.wait(Lock, [&] {
      return St->Ph == RequestState::Terminal || stopRequested();
    });
    if (St->Ph != RequestState::Terminal) {
      Lock.unlock();
      (void)sendMessage(Fd, errorMessage("daemon shutting down",
                                         /*Retryable=*/true));
      return;
    }
  }
  (void)sendMessage(Fd, St->Result);
}

void BuildService::workerLoop() {
  for (;;) {
    std::string Id;
    std::shared_ptr<RequestState> St;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      QueueCv.wait(Lock, [&] { return !Queue.empty() || stopRequested(); });
      if (Queue.empty())
        return; // Stop with nothing queued.
      Id = Queue.front();
      Queue.pop_front();
      St = States[Id];
      St->Ph = RequestState::Running;
    }

    RpcMessage Result = processRequest(Id, St->Request);

    // Durability order mirrors receipt: result.json first, the terminal
    // journal record second. A crash between the two replays the request
    // on resume; the shared cache makes the replay cheap and
    // byte-identical, and the rewrite produces the same result.json.
    const std::string State = Result.strOr("state", "");
    if (Result.Type == "result") {
      Status S = atomicWriteFile(requestDir(Id) + "/result.json",
                                 encodeRpcMessage(Result));
      if (S.ok()) {
        Requests.recordDone(Id, State == "degraded" ? "degraded"
                                                    : "completed");
        if (State == "degraded")
          Stats.RequestsDegraded.fetch_add(1, std::memory_order_relaxed);
        else
          Stats.RequestsCompleted.fetch_add(1, std::memory_order_relaxed);
      } else {
        Result = errorMessage("cannot persist result: " + S.message(),
                              /*Retryable=*/true);
      }
    }
    if (Result.Type != "result") {
      Requests.recordFailed(Id);
      Stats.RequestsFailed.fetch_add(1, std::memory_order_relaxed);
    }

    {
      std::lock_guard<std::mutex> Lock(Mu);
      St->Result = std::move(Result);
      St->Ph = RequestState::Terminal;
      St->Cv.notify_all();
    }
  }
}

RpcMessage BuildService::processRequest(const std::string &Id,
                                        const RpcMessage &Req) {
  MCO_TRACE_SPAN("daemon.request:" + Id, "daemon");
  try {
    // An injected worker crash dies before touching any request state, so
    // the reply is cleanly retryable and a retry starts from scratch.
    if (faultSiteFires(FaultDaemonWorkerCrash)) {
      Stats.WorkerCrashes.fetch_add(1, std::memory_order_relaxed);
      throw InjectedFault(FaultDaemonWorkerCrash);
    }

    AppProfile Profile = profileByName(Req.strOr("profile", "rider"));
    int64_t Modules = Req.intOr("modules", 0);
    if (Modules > 0)
      Profile.NumModules = static_cast<unsigned>(Modules);

    PipelineOptions PO;
    PO.OutlineRounds = static_cast<unsigned>(Req.intOr("rounds", 2));
    PO.WholeProgram = Req.intOr("per_module", 0) == 0;
    PO.DeadStrip.Enabled = Req.intOr("dead_strip", 0) != 0;
    PO.Threads = static_cast<unsigned>(
        Req.intOr("threads", int64_t(Opts.BuildThreads)));
    if (PO.Threads == 0)
      PO.Threads = 1;
    // Heat guidance is degrade-only on this route: a missing or corrupt
    // profile file is recorded in the build's FailureLog and the build
    // proceeds profile-free (daemon clients get no exit-65 affordance).
    PO.Heat.ProfilePath = Req.strOr("heat_file", "");
    int64_t HotPct = Req.intOr("hot_threshold", 0);
    if (HotPct < 0 || HotPct > 100)
      HotPct = 0;
    PO.Heat.HotThresholdPct = static_cast<unsigned>(HotPct);
    PO.Resilience.CacheDir = Opts.StateDir + "/cache";
    PO.Resilience.SharedCache = true;
    PO.Resilience.JournalDir = requestDir(Id);
    PO.Resilience.CacheMaxBytes = Opts.CacheMaxBytes;
    // Always resume against the request's own journal: after a daemon
    // crash mid-build the replay skips every module the dead build made
    // durable, which is what keeps crash-resume byte-identical AND
    // forward-progressing under MCO_CRASH_AFTER_MODULES chains.
    PO.Resilience.Resume = true;
    PO.Resilience.ModuleTimeoutMs = Opts.ModuleTimeoutMs;
    PO.Resilience.TimeoutRetries = Opts.TimeoutRetries;

    uint64_t RequestRetries = 0;
    bool DegradedLadder = false;
    BuildResult R;
    std::unique_ptr<Program> Prog;

    auto RunBuild = [&](const std::atomic<bool> *Cancel, bool AllowHang,
                        unsigned Rounds) {
      if (AllowHang && faultSiteFires(FaultDaemonRequestHang))
        hangUntilCancelled(Cancel);
      PipelineOptions Attempt = PO;
      Attempt.OutlineRounds = Rounds;
      Prog = CorpusSynthesizer(Profile).withThreads(Attempt.Threads)
                 .generate();
      R = buildProgram(*Prog, Attempt);
    };

    if (Opts.RequestTimeoutMs == 0) {
      RunBuild(nullptr, /*AllowHang=*/true, PO.OutlineRounds);
    } else {
      uint64_t DeadlineMs = Opts.RequestTimeoutMs;
      const unsigned MaxAttempts = Opts.RequestRetries + 1;
      bool Built = false;
      for (unsigned Attempt = 1; Attempt <= MaxAttempts && !Built;
           ++Attempt) {
        std::atomic<bool> Cancel{false};
        std::exception_ptr Err;
        DeadlineOutcome O = runWithDeadline(
            DeadlineMs, Cancel,
            [&] { RunBuild(&Cancel, /*AllowHang=*/true, PO.OutlineRounds); },
            Err);
        if (O == DeadlineOutcome::Completed) {
          Built = true;
          break;
        }
        if (O == DeadlineOutcome::Failed)
          std::rethrow_exception(Err);
        Stats.RequestWatchdogCancels.fetch_add(1, std::memory_order_relaxed);
        if (Attempt < MaxAttempts) {
          // Exponential backoff: maybe the deadline was just too tight.
          Stats.RequestWatchdogRetries.fetch_add(1,
                                                 std::memory_order_relaxed);
          ++RequestRetries;
          DeadlineMs *= 2;
        }
      }
      if (!Built) {
        // The degradation ladder's last rung: ship the app unoutlined
        // (rounds=0 cannot hang — there is no outlining to stall and the
        // hang site is skipped) and mark the result degraded.
        DegradedLadder = true;
        RunBuild(nullptr, /*AllowHang=*/false, 0);
      }
    }

    Stats.CacheHits.fetch_add(R.CacheHits, std::memory_order_relaxed);
    Stats.CacheMisses.fetch_add(R.CacheMisses, std::memory_order_relaxed);
    Stats.CacheCorrupt.fetch_add(R.CacheCorrupt, std::memory_order_relaxed);

    RpcMessage Out;
    Out.Type = "result";
    Out.Str["id"] = Id;
    Out.Str["state"] = DegradedLadder ? "degraded" : "completed";
    Out.Str["artifact_digest"] = programContentDigest(*Prog);
    Out.Int["code_size"] = int64_t(R.CodeSize);
    Out.Int["binary_size"] = int64_t(R.BinarySize);
    Out.Int["modules_degraded"] = int64_t(R.ModulesDegraded);
    Out.Int["modules_timed_out"] = int64_t(R.ModulesTimedOut);
    Out.Int["modules_resumed"] = int64_t(R.ModulesResumed);
    Out.Int["watchdog_retries"] = int64_t(R.WatchdogRetries);
    Out.Int["request_retries"] = int64_t(RequestRetries);
    Out.Int["cache_hits"] = int64_t(R.CacheHits);
    Out.Int["cache_misses"] = int64_t(R.CacheMisses);
    Out.Int["cache_corrupt"] = int64_t(R.CacheCorrupt);
    Out.Int["cache_writer_contended"] = int64_t(R.CacheWriterContended);
    return Out;
  } catch (const std::exception &E) {
    return errorMessage(std::string("build failed: ") + E.what(),
                        /*Retryable=*/true);
  }
}
