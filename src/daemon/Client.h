//===- daemon/Client.h - mco-buildd client with retry/backoff ---*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of `mco-rpc-v1`. A DaemonClient opens a fresh
/// connection per call (hello handshake included), and submitBuild()
/// wraps that in the retry loop the failure-domain design depends on:
/// deterministic exponential backoff, honoring the daemon's `retry_after`
/// hint, re-submitting the SAME request id every attempt so a dropped
/// connection or a daemon restart can never double-build — the daemon
/// either attaches the retry to the in-flight request or re-serves the
/// durable result byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_DAEMON_CLIENT_H
#define MCO_DAEMON_CLIENT_H

#include "daemon/Rpc.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace mco {

struct ClientOptions {
  std::string SocketPath;
  /// Total tries for submitBuild() (connect + handshake + reply each).
  unsigned MaxAttempts = 10;
  /// First retry delay; doubles per attempt up to MaxBackoffMs.
  uint64_t InitialBackoffMs = 25;
  uint64_t MaxBackoffMs = 2000;
  /// How long one attempt waits for the build result frame. Builds are
  /// slow; connection-level frame reads reuse this too.
  int ReplyTimeoutMs = 120000;
};

class DaemonClient {
public:
  explicit DaemonClient(ClientOptions Opts) : Opts(std::move(Opts)) {}

  /// One round trip on a fresh connection: connect, hello handshake,
  /// send \p Req, return the reply. No retries — callers that want the
  /// failure-domain behaviour use submitBuild().
  Expected<RpcMessage> call(const RpcMessage &Req);

  /// Submits a build request and retries until a terminal `result`
  /// arrives or attempts are exhausted. Retries connection failures,
  /// `retry_after` (sleeping the hinted millis), and `error` replies
  /// marked retryable; a non-retryable `error` fails immediately.
  /// \p Req must carry the idempotent `id` — it is reused verbatim on
  /// every attempt.
  Expected<RpcMessage> submitBuild(const RpcMessage &Req);

  const ClientOptions &options() const { return Opts; }

private:
  ClientOptions Opts;
};

} // namespace mco

#endif // MCO_DAEMON_CLIENT_H
