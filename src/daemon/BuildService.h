//===- daemon/BuildService.h - The mco-buildd daemon core -------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived build service behind mco-buildd: accepts `mco-rpc-v1`
/// build requests over a Unix socket, shards them across a worker pool,
/// and backs every client with one shared content-addressed ArtifactCache
/// under the single-writer lock discipline.
///
/// Failure-domain design (the headline, per DESIGN.md "Build service &
/// failure domains"):
///
///  - Admission control: the request queue is bounded; past the limit the
///    daemon replies `retry_after` instead of queueing unboundedly. The
///    `daemon.queue.overflow` fault site forces that reply.
///  - Idempotent request ids: a durable result is re-served byte-for-byte
///    on re-submission, and a re-submitted in-flight id attaches to the
///    running request — a dropped connection never double-builds.
///  - Watchdogs: per-request deadlines (exponential-backoff retries,
///    reusing the cooperative OutlinerOptions::CancelFlag discipline) on
///    top of the pipeline's per-module watchdog.
///  - Degradation ladder: a request that exhausts its watchdog retries is
///    rebuilt once with outlining disabled and shipped `degraded` rather
///    than failed — the paper's production rule that an optimizer problem
///    costs optimization, never the build.
///  - Crash-resume: request.json is durable before the request table
///    records `recv`, the result before `done`; `mco-buildd --resume`
///    replays exactly the unfinished ids, and per-request BuildJournals +
///    the shared cache make the replay byte-identical.
///
/// On-disk layout under StateDir:
///
///   daemon.lock               owner-pid lock (one daemon per state dir)
///   requests.mcoj             RequestJournal (request table)
///   cache/                    the shared ArtifactCache
///   requests/<id>/request.json   the accepted request, durable
///   requests/<id>/journal.mcoj   the request's own BuildJournal
///   requests/<id>/result.json    the durable result (terminal)
///
//===----------------------------------------------------------------------===//

#ifndef MCO_DAEMON_BUILDSERVICE_H
#define MCO_DAEMON_BUILDSERVICE_H

#include "daemon/Rpc.h"
#include "pipeline/BuildJournal.h"
#include "support/Error.h"
#include "support/FileAtomics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mco {

struct DaemonOptions {
  std::string SocketPath;
  std::string StateDir;
  /// Worker threads building requests concurrently.
  unsigned Workers = 2;
  /// Bound on queued-but-not-running requests; past it, `retry_after`.
  unsigned QueueLimit = 8;
  /// Per-request deadline (ms); 0 disables the request watchdog.
  uint64_t RequestTimeoutMs = 0;
  /// Extra attempts after a request timeout, each with double the
  /// deadline, before the degradation ladder's unoutlined rebuild.
  unsigned RequestRetries = 2;
  /// Per-module watchdog, passed through to the pipeline.
  uint64_t ModuleTimeoutMs = 0;
  unsigned TimeoutRetries = 2;
  uint64_t CacheMaxBytes = 256ull * 1024 * 1024;
  /// Replay unfinished requests from the request table before serving.
  bool Resume = false;
  /// Threads given to each request's build (synthesis + outlining).
  unsigned BuildThreads = 1;
  /// accept() poll interval — how often the accept loop re-checks stop.
  int AcceptPollMs = 100;
  /// Per-frame receive timeout on daemon-side connections.
  int FrameTimeoutMs = 30000;
};

/// Daemon-lifetime counters. Deliberately NOT MetricsRegistry: every
/// buildProgram resets the process-wide registry, so a long-lived
/// multi-request service keeps its own atomics and exports them over the
/// `stats` RPC.
struct DaemonStats {
  std::atomic<uint64_t> RequestsReceived{0};
  std::atomic<uint64_t> RequestsCompleted{0};
  std::atomic<uint64_t> RequestsDegraded{0};
  std::atomic<uint64_t> RequestsFailed{0};
  std::atomic<uint64_t> RequestsRejected{0}; ///< retry_after backpressure.
  std::atomic<uint64_t> RequestsResumed{0};
  std::atomic<uint64_t> RequestsAttached{0}; ///< Idempotent re-submissions.
  std::atomic<uint64_t> ResultsReserved{0};  ///< Served from result.json.
  std::atomic<uint64_t> ConnDropped{0};
  std::atomic<uint64_t> MalformedFrames{0}; ///< Fatal-error replies sent.
  std::atomic<uint64_t> WorkerCrashes{0};
  std::atomic<uint64_t> RequestWatchdogCancels{0};
  std::atomic<uint64_t> RequestWatchdogRetries{0};
  std::atomic<uint64_t> CacheHits{0};   ///< Summed over finished requests.
  std::atomic<uint64_t> CacheMisses{0};
  std::atomic<uint64_t> CacheCorrupt{0};
};

class BuildService {
public:
  explicit BuildService(DaemonOptions Opts) : Opts(std::move(Opts)) {}
  ~BuildService();

  BuildService(const BuildService &) = delete;
  BuildService &operator=(const BuildService &) = delete;

  /// Prepares the state dir (lock, request table, cache layout), replays
  /// unfinished requests when resuming, binds the socket, and starts the
  /// worker pool. Fails when another live daemon owns StateDir.
  Status start();

  /// Runs the accept loop in the calling thread until requestStop().
  /// start() must have succeeded.
  void serve();

  /// Asks serve() and all workers to wind down. Safe from any thread
  /// (connection handlers call it for the `shutdown` RPC).
  void requestStop();
  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }

  const DaemonOptions &options() const { return Opts; }
  const DaemonStats &stats() const { return Stats; }

  /// Queued + running requests (for tests and the stats RPC).
  size_t pendingRequests();

private:
  struct RequestState {
    RpcMessage Request;
    enum Phase { Queued, Running, Terminal } Ph = Queued;
    RpcMessage Result; ///< Valid once Ph == Terminal.
    std::condition_variable Cv;
  };

  std::string requestDir(const std::string &Id) const;
  Status resumeOutstanding();

  void acceptLoop();
  void handleConnection(int Fd);
  void handleBuild(int Fd, const RpcMessage &Req);

  void workerLoop();
  /// Builds one request end to end; never throws (every failure becomes
  /// an `error`/degraded result message).
  RpcMessage processRequest(const std::string &Id, const RpcMessage &Req);

  DaemonOptions Opts;
  DaemonStats Stats;
  FileLock DaemonLock;
  RequestJournal Requests;
  int ListenFd = -1;

  std::mutex Mu;
  std::map<std::string, std::shared_ptr<RequestState>> States;
  std::deque<std::string> Queue;
  std::condition_variable QueueCv;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  std::vector<std::thread> Conns;
};

} // namespace mco

#endif // MCO_DAEMON_BUILDSERVICE_H
