//===- daemon/Rpc.h - mco-rpc-v1 framing and messages ----------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `mco-rpc-v1` wire protocol between mco-client and mco-buildd: each
/// frame is a u32 little-endian payload length followed by that many bytes
/// of JSON. Messages are flat objects — a "type" tag plus string and
/// integer fields — which keeps the parser small (no external JSON
/// dependency is available in this toolchain) and the encoding
/// deterministic (keys are emitted in sorted order).
///
/// Message types:
///
///   hello       client -> daemon  {proto}                 handshake
///   hello_ok    daemon -> client  {proto}
///   build       client -> daemon  {id, profile, modules, rounds,
///                                  per_module, threads}
///   result      daemon -> client  {id, state=completed|degraded,
///                                  code_size, binary_size, artifact_digest,
///                                  modules_degraded, watchdog_retries,
///                                  cache_hits, cache_misses, ...}
///   retry_after daemon -> client  {millis}                backpressure
///   error       daemon -> client  {message, retryable}
///   ping/pong, stats/stats_ok, shutdown/shutdown_ok
///
/// The `daemon.conn.drop` fault site fires inside sendFrame/recvFrame and
/// hard-closes the connection — the deterministic stand-in for a peer
/// dying mid-frame, which both ends must treat as retryable. The
/// `rpc.frame.garble` site corrupts a payload byte on send: the frame
/// arrives structurally intact but its JSON no longer decodes, which the
/// daemon must answer with a fatal-error reply (and close) rather than
/// dying or hanging.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_DAEMON_RPC_H
#define MCO_DAEMON_RPC_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>

namespace mco {

/// The protocol id both ends must agree on.
inline constexpr const char *RpcProtocolId = "mco-rpc-v1";

/// Frames larger than this are protocol damage, not data.
inline constexpr uint32_t RpcMaxFrameBytes = 16u * 1024 * 1024;

/// One flat message: a type tag plus string and integer fields.
struct RpcMessage {
  std::string Type;
  std::map<std::string, std::string> Str;
  std::map<std::string, int64_t> Int;

  int64_t intOr(const std::string &Key, int64_t Default) const {
    auto It = Int.find(Key);
    return It == Int.end() ? Default : It->second;
  }
  std::string strOr(const std::string &Key, const std::string &Default) const {
    auto It = Str.find(Key);
    return It == Str.end() ? Default : It->second;
  }
};

// Shape caps enforced by the FormatValidator pass on every decoded
// message: a hostile peer must not be able to grow tables or buffers past
// what any legitimate message needs.
inline constexpr size_t RpcMaxFields = 256;
inline constexpr size_t RpcMaxKeyBytes = 64;
inline constexpr size_t RpcMaxValueBytes = 1u << 20;

/// Renders \p M as a JSON object ("type" first, then sorted keys).
std::string encodeRpcMessage(const RpcMessage &M);

/// The mco-rpc-v1 FormatValidator pass: type/key/value length caps and a
/// total field cap. decodeRpcMessage runs it on everything it parses;
/// exposed separately so tests can drive it directly.
Status validateRpcMessage(const RpcMessage &M);

/// Parses a flat JSON object (string and integer values only) and
/// validates its shape. All failures are CorruptInput with byte offsets.
Expected<RpcMessage> decodeRpcMessage(const std::string &Bytes);

/// Writes one length-prefixed frame. On the `daemon.conn.drop` fault the
/// connection is shut down mid-protocol and an error returned.
Status sendFrame(int Fd, const std::string &Payload);

/// Reads one length-prefixed frame. A peer that vanished (EOF, reset) or
/// an injected drop is an error the caller treats as retryable;
/// \p TimeoutMs bounds the wait for the first byte and between bytes
/// (0 = wait forever).
Expected<std::string> recvFrame(int Fd, int TimeoutMs);

/// sendFrame(encodeRpcMessage(M)).
Status sendMessage(int Fd, const RpcMessage &M);

/// decodeRpcMessage(recvFrame(Fd, TimeoutMs)).
Expected<RpcMessage> recvMessage(int Fd, int TimeoutMs);

} // namespace mco

#endif // MCO_DAEMON_RPC_H
