//===- daemon/Rpc.cpp - mco-rpc-v1 framing and messages -------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "daemon/Rpc.h"

#include "support/FaultInjection.h"
#include "support/FormatValidator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mco;

//===----------------------------------------------------------------------===//
// JSON encode/decode
//===----------------------------------------------------------------------===//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

/// A minimal recursive-descent reader for the flat message shape (one
/// object, string or integer values). Same discipline as the traces
/// parser: no external JSON dependency is available in this toolchain.
class MsgCursor {
public:
  explicit MsgCursor(const std::string &S) : S(S) {}

  Status fail(const std::string &Msg) const {
    return MCO_CORRUPT("rpc JSON: " + Msg + " at byte " +
                       std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool atEnd() {
    skipWs();
    return Pos == S.size();
  }

  Status string(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char Ch = S[Pos++];
      if (Ch == '\\') {
        if (Pos >= S.size())
          return fail("truncated escape");
        char E = S[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > S.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          Out += static_cast<char>(V & 0xFF); // Flat ASCII payloads only.
          break;
        }
        default:
          return fail("unknown escape");
        }
      } else {
        Out += Ch;
      }
    }
    if (!consume('"'))
      return fail("unterminated string");
    return Status::success();
  }

  Status integer(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
      ++Pos;
    if (Pos == Start || (S[Start] == '-' && Pos == Start + 1))
      return fail("expected integer");
    Out = std::strtoll(S.substr(Start, Pos - Start).c_str(), nullptr, 10);
    return Status::success();
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

} // namespace

std::string mco::encodeRpcMessage(const RpcMessage &M) {
  std::string Out = "{\"type\": \"" + jsonEscape(M.Type) + "\"";
  // std::map iteration is sorted, so equal messages encode to equal bytes.
  for (const auto &[K, V] : M.Str)
    Out += ", \"" + jsonEscape(K) + "\": \"" + jsonEscape(V) + "\"";
  for (const auto &[K, V] : M.Int)
    Out += ", \"" + jsonEscape(K) + "\": " + std::to_string(V);
  Out += "}";
  return Out;
}

Status mco::validateRpcMessage(const RpcMessage &M) {
  if (M.Type.empty())
    return MCO_CORRUPT("rpc message: empty type");
  if (M.Type.size() > RpcMaxKeyBytes)
    return MCO_CORRUPT("rpc message: type too long");
  if (Status S = validate::countWithin(M.Str.size() + M.Int.size(),
                                       RpcMaxFields, "rpc field");
      !S.ok())
    return S;
  for (const auto &[K, V] : M.Str) {
    if (K.empty() || K.size() > RpcMaxKeyBytes)
      return MCO_CORRUPT("rpc message: bad key length");
    if (V.size() > RpcMaxValueBytes)
      return MCO_CORRUPT("rpc message: value for '" + K + "' too long");
  }
  for (const auto &[K, V] : M.Int) {
    (void)V;
    if (K.empty() || K.size() > RpcMaxKeyBytes)
      return MCO_CORRUPT("rpc message: bad key length");
  }
  return Status::success();
}

Expected<RpcMessage> mco::decodeRpcMessage(const std::string &Bytes) {
  MsgCursor C(Bytes);
  RpcMessage M;
  if (!C.consume('{'))
    return C.fail("expected object");
  bool First = true;
  size_t Fields = 0;
  while (!C.consume('}')) {
    if (!First && !C.consume(','))
      return C.fail("expected ',' or '}'");
    First = false;
    if (++Fields > RpcMaxFields)
      return C.fail("too many fields");
    std::string Key;
    if (Status S = C.string(Key); !S.ok())
      return S;
    if (!C.consume(':'))
      return C.fail("expected ':'");
    // A value is a string or an integer. string() consumes nothing when
    // the next character is not a quote, so the fallback is safe; a quote
    // with a damaged body fails both paths and reports the string error.
    std::string SV;
    int64_t IV = 0;
    if (Status S = C.string(SV); S.ok()) {
      if (Key == "type")
        M.Type = SV;
      else
        M.Str[Key] = SV;
    } else if (Status I = C.integer(IV); I.ok()) {
      M.Int[Key] = IV;
    } else {
      return S;
    }
  }
  if (!C.atEnd())
    return C.fail("trailing bytes after message");
  if (M.Type.empty())
    return MCO_CORRUPT("rpc JSON: message has no type");
  // FormatValidator pass: shape caps, after parse and before any consumer
  // acts on the message.
  if (Status S = validateRpcMessage(M); !S.ok())
    return S;
  return M;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

Status dropConnection(int Fd, const char *What) {
  // A hard shutdown, not a polite close: the peer sees a reset/EOF in the
  // middle of a frame, exactly what a crashed process produces.
  ::shutdown(Fd, SHUT_RDWR);
  return MCO_TRANSIENT(std::string("connection dropped (injected) during ") +
                       What);
}

// Transport failures are Transient: the idempotent request id makes a
// retry safe, and exit-code mapping must say "try again", not "bug".

Status writeAll(int Fd, const void *Data, size_t N) {
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < N) {
    // MSG_NOSIGNAL: a peer that died mid-frame must surface as EPIPE, not
    // kill the daemon with SIGPIPE.
    ssize_t W = ::send(Fd, P + Off, N - Off, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return MCO_TRANSIENT(std::string("frame write failed: ") +
                           std::strerror(errno));
    }
    if (W == 0)
      return MCO_TRANSIENT("frame write: connection closed");
    Off += static_cast<size_t>(W);
  }
  return Status::success();
}

Status readAll(int Fd, void *Data, size_t N, int TimeoutMs) {
  char *P = static_cast<char *>(Data);
  size_t Off = 0;
  while (Off < N) {
    if (TimeoutMs > 0) {
      struct pollfd PFd = {Fd, POLLIN, 0};
      int R = ::poll(&PFd, 1, TimeoutMs);
      if (R == 0)
        return MCO_TRANSIENT("frame read timed out after " +
                             std::to_string(TimeoutMs) + " ms");
      if (R < 0 && errno != EINTR)
        return MCO_TRANSIENT(std::string("frame poll failed: ") +
                             std::strerror(errno));
      if (R < 0)
        continue;
    }
    ssize_t R = ::read(Fd, P + Off, N - Off);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return MCO_TRANSIENT(std::string("frame read failed: ") +
                           std::strerror(errno));
    }
    if (R == 0)
      return MCO_TRANSIENT("frame read: connection closed by peer");
    Off += static_cast<size_t>(R);
  }
  return Status::success();
}

} // namespace

Status mco::sendFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > RpcMaxFrameBytes)
    return MCO_ERROR("frame too large: " + std::to_string(Payload.size()) +
                     " bytes");
  if (faultSiteFires(FaultDaemonConnDrop))
    return dropConnection(Fd, "send");
  uint8_t Len[4];
  for (int I = 0; I < 4; ++I)
    Len[I] = static_cast<uint8_t>((Payload.size() >> (8 * I)) & 0xFF);
  if (faultSiteFires(FaultRpcFrameGarble)) {
    // Deliver a structurally intact frame whose JSON is damaged: flip a
    // bit in the opening byte (the length prefix stays honest, so the
    // receiver reads the whole frame and fails in decode, not in
    // framing). Deterministic stand-in for memory corruption or a buggy
    // peer speaking the right framing with the wrong bytes.
    std::string Garbled = Payload;
    if (!Garbled.empty())
      Garbled[0] ^= 0x04;
    if (Status S = writeAll(Fd, Len, 4); !S.ok())
      return S;
    return writeAll(Fd, Garbled.data(), Garbled.size());
  }
  if (Status S = writeAll(Fd, Len, 4); !S.ok())
    return S;
  return writeAll(Fd, Payload.data(), Payload.size());
}

Expected<std::string> mco::recvFrame(int Fd, int TimeoutMs) {
  if (faultSiteFires(FaultDaemonConnDrop))
    return dropConnection(Fd, "recv");
  uint8_t Len[4];
  if (Status S = readAll(Fd, Len, 4, TimeoutMs); !S.ok())
    return S;
  uint32_t N = 0;
  for (int I = 0; I < 4; ++I)
    N |= static_cast<uint32_t>(Len[I]) << (8 * I);
  if (N > RpcMaxFrameBytes)
    return MCO_CORRUPT("frame length " + std::to_string(N) +
                       " exceeds protocol maximum");
  std::string Payload(N, '\0');
  if (N > 0)
    if (Status S = readAll(Fd, Payload.data(), N, TimeoutMs); !S.ok())
      return S;
  return Payload;
}

Status mco::sendMessage(int Fd, const RpcMessage &M) {
  return sendFrame(Fd, encodeRpcMessage(M));
}

Expected<RpcMessage> mco::recvMessage(int Fd, int TimeoutMs) {
  Expected<std::string> Frame = recvFrame(Fd, TimeoutMs);
  if (!Frame.ok())
    return Frame.status();
  return decodeRpcMessage(*Frame);
}
