//===- daemon/Client.cpp - mco-buildd client with retry/backoff -----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include "daemon/Socket.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace mco;

Expected<RpcMessage> DaemonClient::call(const RpcMessage &Req) {
  Expected<int> C = connectUnix(Opts.SocketPath);
  if (!C.ok())
    return C.status();
  int Fd = *C;

  RpcMessage Hello;
  Hello.Type = "hello";
  Hello.Str["proto"] = RpcProtocolId;
  Status S = sendMessage(Fd, Hello);
  Expected<RpcMessage> HelloReply =
      S.ok() ? recvMessage(Fd, Opts.ReplyTimeoutMs) : Expected<RpcMessage>(S);
  if (!HelloReply.ok()) {
    closeFd(Fd);
    return HelloReply.status();
  }
  if (HelloReply->Type != "hello_ok") {
    closeFd(Fd);
    return MCO_ERROR("daemon refused handshake: " +
                     HelloReply->strOr("message", HelloReply->Type));
  }

  S = sendMessage(Fd, Req);
  Expected<RpcMessage> Reply =
      S.ok() ? recvMessage(Fd, Opts.ReplyTimeoutMs) : Expected<RpcMessage>(S);
  closeFd(Fd);
  return Reply;
}

Expected<RpcMessage> DaemonClient::submitBuild(const RpcMessage &Req) {
  uint64_t BackoffMs = Opts.InitialBackoffMs;
  Status Last = MCO_ERROR("no attempts made");
  for (unsigned Attempt = 1; Attempt <= std::max(1u, Opts.MaxAttempts);
       ++Attempt) {
    Expected<RpcMessage> Reply = call(Req);
    uint64_t SleepMs = BackoffMs;
    if (Reply.ok()) {
      if (Reply->Type == "result")
        return Reply;
      if (Reply->Type == "retry_after") {
        // The daemon's hint outranks our own schedule: it knows its
        // queue depth, we only know our attempt count.
        SleepMs = std::max<uint64_t>(
            1, uint64_t(Reply->intOr("millis", int64_t(BackoffMs))));
        Last = MCO_TRANSIENT("daemon busy (retry_after)");
      } else if (Reply->Type == "error") {
        if (Reply->intOr("retryable", 0) == 0)
          return MCO_ERROR("daemon error: " +
                           Reply->strOr("message", "(no message)"));
        Last = MCO_TRANSIENT("daemon error (retryable): " +
                             Reply->strOr("message", "(no message)"));
      } else {
        return MCO_ERROR("unexpected reply type '" + Reply->Type + "'");
      }
    } else {
      // Connect refused (daemon restarting), dropped connection, frame
      // timeout: all retryable — the id makes the retry idempotent.
      Last = Reply.status();
    }
    if (Attempt < Opts.MaxAttempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
      BackoffMs = std::min(BackoffMs * 2, Opts.MaxBackoffMs);
    }
  }
  // Exhausting the retry budget is itself Transient: the same command,
  // re-run when the daemon has recovered, may well succeed.
  return MCO_TRANSIENT("build '" + Req.strOr("id", "?") +
                       "' not served after " +
                       std::to_string(Opts.MaxAttempts) +
                       " attempts; last: " + Last.message());
}
