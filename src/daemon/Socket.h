//===- daemon/Socket.h - Unix-domain socket helpers -------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin wrappers over AF_UNIX stream sockets for the build service. All
/// are blocking with poll-based timeouts; SIGPIPE is suppressed per-write
/// (a peer dying mid-frame must surface as an error Status, never a
/// signal).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_DAEMON_SOCKET_H
#define MCO_DAEMON_SOCKET_H

#include "support/Error.h"

#include <string>

namespace mco {

/// Binds and listens on \p Path, unlinking any stale socket file first
/// (the daemon's lock file, not the socket, is what prevents two daemons —
/// a leftover socket from a SIGKILLed daemon must not block restart).
Expected<int> listenUnix(const std::string &Path, int Backlog);

/// Accepts one connection. \returns the connection fd, or -1 when
/// \p TimeoutMs elapsed with nothing to accept (so callers can poll a
/// stop flag), or an error Status.
Expected<int> acceptUnix(int ListenFd, int TimeoutMs);

/// Connects to \p Path. Fails fast when nothing listens there (the
/// client's retry loop owns the backoff).
Expected<int> connectUnix(const std::string &Path);

/// close() that tolerates -1 and EINTR.
void closeFd(int Fd);

} // namespace mco

#endif // MCO_DAEMON_SOCKET_H
