//===- ir/IR.h - A small mid-level IR ---------------------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small mid-level IR (all values are i64; pointers are
/// integers) playing the role SIL/LLVM-IR play in the paper's pipeline
/// (Fig. 3). The 26 Swift algorithm benchmarks of Table IV are written
/// against this IR and lowered to machine code by src/codegen, so the
/// outliner is exercised on organically compiled code, not only on
/// synthesized idioms.
///
/// Values are function-local dense ids: parameters take ids
/// [0, NumParams), every instruction with a result allocates the next id.
/// There are no phis; locals live in Alloca slots (as -O0 compilers do),
/// which keeps lowering simple and — usefully for this paper — produces
/// the repetitive machine code that outlining feeds on.
///
//===----------------------------------------------------------------------===//

#ifndef MCO_IR_IR_H
#define MCO_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace mco {
namespace ir {

/// A function-local value id.
using Value = uint32_t;

/// Marker for "no value".
inline constexpr Value NoValue = UINT32_MAX;

/// Comparison predicates (signed, plus unsigned below/above-or-equal).
enum class Pred : uint8_t { EQ, NE, LT, LE, GT, GE, ULT, UGE };

/// Instruction opcodes.
enum class IROp : uint8_t {
  Const,      ///< Result = Imm
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr,
  ICmp,       ///< Result = Args[0] <Pred> Args[1] ? 1 : 0
  Select,     ///< Result = Args[0] ? Args[1] : Args[2]
  Alloca,     ///< Result = address of a fresh Imm-byte stack region
  Load,       ///< Result = mem64[Args[0]]
  Store,      ///< mem64[Args[1]] = Args[0]
  GlobalAddr, ///< Result = address of global symbol Callee
  Call,       ///< Result = callee(Args...); Callee names the function
  Ret,        ///< return Args[0]
  Br,         ///< goto B0
  CondBr,     ///< if (Args[0]) goto B0 else goto B1
};

/// One IR instruction.
struct IRInstr {
  IROp Op;
  Value Result = NoValue;
  std::vector<Value> Args;
  int64_t Imm = 0;
  Pred P = Pred::EQ;
  /// Symbol name for Call / GlobalAddr.
  std::string Callee;
  uint32_t B0 = 0;
  uint32_t B1 = 0;

  bool isTerminator() const {
    return Op == IROp::Ret || Op == IROp::Br || Op == IROp::CondBr;
  }
};

/// A basic block: a straight-line instruction list ending in a terminator.
struct IRBlock {
  std::vector<IRInstr> Instrs;
};

/// An IR function.
struct IRFunction {
  std::string Name;
  uint32_t NumParams = 0;
  /// Total values (params + instruction results); assigned by IRBuilder.
  uint32_t NumValues = 0;
  std::vector<IRBlock> Blocks;
};

/// A global: \p Bytes of initialized data.
struct IRGlobal {
  std::string Name;
  std::vector<uint8_t> Bytes;

  /// Convenience: builds a global holding \p Words as little-endian i64s.
  static IRGlobal fromWords(const std::string &Name,
                            const std::vector<int64_t> &Words);
};

/// An IR module.
struct IRModule {
  std::string Name;
  std::vector<IRFunction> Functions;
  std::vector<IRGlobal> Globals;

  const IRFunction *findFunction(const std::string &Name) const;
};

/// Checks structural invariants (blocks terminated exactly once, value ids
/// in range, branch targets valid). \returns an empty string when valid,
/// else a diagnostic.
std::string verify(const IRModule &M);

} // namespace ir
} // namespace mco

#endif // MCO_IR_IR_H
