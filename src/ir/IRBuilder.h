//===- ir/IRBuilder.h - IR construction -------------------------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder for the mid-level IR. Usage:
/// \code
///   IRModule M;
///   IRBuilder B(M, "gcd", /*NumParams=*/2);
///   Value A = B.param(0), Bv = B.param(1);
///   ...
///   B.ret(A);
///   B.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MCO_IR_IRBUILDER_H
#define MCO_IR_IRBUILDER_H

#include "ir/IR.h"

#include <cassert>

namespace mco {
namespace ir {

/// Builds one function at a time into an IRModule.
class IRBuilder {
public:
  IRBuilder(IRModule &M, const std::string &Name, uint32_t NumParams)
      : M(M) {
    F.Name = Name;
    F.NumParams = NumParams;
    F.NumValues = NumParams;
    newBlock(); // Entry.
  }

  /// Appends the finished function to the module. Must be called exactly
  /// once, after the last instruction.
  void finish() {
    assert(!Finished && "finish() called twice");
    Finished = true;
    M.Functions.push_back(std::move(F));
  }

  /// \returns the id of parameter \p I.
  Value param(uint32_t I) const {
    assert(I < F.NumParams && "no such parameter");
    return I;
  }

  /// Starts a new block and \returns its index.
  uint32_t newBlock() {
    F.Blocks.emplace_back();
    Cur = static_cast<uint32_t>(F.Blocks.size()) - 1;
    return Cur;
  }

  /// Switches insertion to block \p B.
  void setBlock(uint32_t B) {
    assert(B < F.Blocks.size() && "no such block");
    Cur = B;
  }

  uint32_t currentBlock() const { return Cur; }

  Value constInt(int64_t V) {
    IRInstr I{IROp::Const};
    I.Imm = V;
    return emitWithResult(std::move(I));
  }

  Value add(Value A, Value B) { return binop(IROp::Add, A, B); }
  Value sub(Value A, Value B) { return binop(IROp::Sub, A, B); }
  Value mul(Value A, Value B) { return binop(IROp::Mul, A, B); }
  Value sdiv(Value A, Value B) { return binop(IROp::SDiv, A, B); }
  Value srem(Value A, Value B) { return binop(IROp::SRem, A, B); }
  Value and_(Value A, Value B) { return binop(IROp::And, A, B); }
  Value or_(Value A, Value B) { return binop(IROp::Or, A, B); }
  Value xor_(Value A, Value B) { return binop(IROp::Xor, A, B); }
  Value shl(Value A, Value B) { return binop(IROp::Shl, A, B); }
  Value ashr(Value A, Value B) { return binop(IROp::AShr, A, B); }

  Value icmp(Pred P, Value A, Value B) {
    IRInstr I{IROp::ICmp};
    I.Args = {A, B};
    I.P = P;
    return emitWithResult(std::move(I));
  }

  Value select(Value C, Value A, Value B) {
    IRInstr I{IROp::Select};
    I.Args = {C, A, B};
    return emitWithResult(std::move(I));
  }

  /// Allocates \p Bytes of stack and \returns its address.
  Value alloca_(int64_t Bytes) {
    assert(Bytes > 0 && "empty alloca");
    IRInstr I{IROp::Alloca};
    I.Imm = Bytes;
    return emitWithResult(std::move(I));
  }

  Value load(Value Ptr) {
    IRInstr I{IROp::Load};
    I.Args = {Ptr};
    return emitWithResult(std::move(I));
  }

  void store(Value V, Value Ptr) {
    IRInstr I{IROp::Store};
    I.Args = {V, Ptr};
    emit(std::move(I));
  }

  Value globalAddr(const std::string &Name) {
    IRInstr I{IROp::GlobalAddr};
    I.Callee = Name;
    return emitWithResult(std::move(I));
  }

  Value call(const std::string &Callee, const std::vector<Value> &Args) {
    assert(Args.size() <= 8 && "at most 8 register arguments");
    IRInstr I{IROp::Call};
    I.Callee = Callee;
    I.Args = Args;
    return emitWithResult(std::move(I));
  }

  void ret(Value V) {
    IRInstr I{IROp::Ret};
    I.Args = {V};
    emit(std::move(I));
  }

  void br(uint32_t B) {
    IRInstr I{IROp::Br};
    I.B0 = B;
    emit(std::move(I));
  }

  void condBr(Value C, uint32_t IfTrue, uint32_t IfFalse) {
    IRInstr I{IROp::CondBr};
    I.Args = {C};
    I.B0 = IfTrue;
    I.B1 = IfFalse;
    emit(std::move(I));
  }

  // Pointer convenience: P + Index*8 and typed element access.
  Value gep(Value P, Value Index) {
    Value Eight = constInt(8);
    Value Off = mul(Index, Eight);
    return add(P, Off);
  }
  Value loadIdx(Value P, Value Index) { return load(gep(P, Index)); }
  void storeIdx(Value V, Value P, Value Index) { store(V, gep(P, Index)); }

private:
  Value binop(IROp Op, Value A, Value B) {
    IRInstr I{Op};
    I.Args = {A, B};
    return emitWithResult(std::move(I));
  }

  void emit(IRInstr I) {
    assert(!Finished && "builder already finished");
    F.Blocks[Cur].Instrs.push_back(std::move(I));
  }

  Value emitWithResult(IRInstr I) {
    I.Result = F.NumValues++;
    Value R = I.Result;
    emit(std::move(I));
    return R;
  }

  IRModule &M;
  IRFunction F;
  uint32_t Cur = 0;
  bool Finished = false;
};

} // namespace ir
} // namespace mco

#endif // MCO_IR_IRBUILDER_H
