//===- ir/IR.cpp - IR verification and helpers ----------------------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <cstring>

using namespace mco;
using namespace mco::ir;

IRGlobal IRGlobal::fromWords(const std::string &Name,
                             const std::vector<int64_t> &Words) {
  IRGlobal G;
  G.Name = Name;
  G.Bytes.resize(Words.size() * 8);
  for (size_t I = 0; I < Words.size(); ++I)
    std::memcpy(G.Bytes.data() + I * 8, &Words[I], 8);
  return G;
}

const IRFunction *IRModule::findFunction(const std::string &Name) const {
  for (const IRFunction &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string mco::ir::verify(const IRModule &M) {
  for (const IRFunction &F : M.Functions) {
    if (F.Blocks.empty())
      return "function '" + F.Name + "' has no blocks";
    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      const IRBlock &Blk = F.Blocks[B];
      std::string Where =
          "function '" + F.Name + "' block " + std::to_string(B);
      if (Blk.Instrs.empty())
        return Where + " is empty";
      for (size_t I = 0; I < Blk.Instrs.size(); ++I) {
        const IRInstr &Ins = Blk.Instrs[I];
        const bool IsLast = I + 1 == Blk.Instrs.size();
        if (Ins.isTerminator() != IsLast)
          return Where + " instr " + std::to_string(I) +
                 (IsLast ? " does not end with a terminator"
                         : " has a terminator in the middle");
        if (Ins.Result != NoValue && Ins.Result >= F.NumValues)
          return Where + " result id out of range";
        for (Value V : Ins.Args)
          if (V >= F.NumValues)
            return Where + " operand id out of range";
        if (Ins.Op == IROp::Br || Ins.Op == IROp::CondBr) {
          if (Ins.B0 >= F.Blocks.size())
            return Where + " branch target B0 out of range";
          if (Ins.Op == IROp::CondBr && Ins.B1 >= F.Blocks.size())
            return Where + " branch target B1 out of range";
        }
        if (Ins.Op == IROp::Call && Ins.Args.size() > 8)
          return Where + " call with more than 8 arguments";
        if (Ins.Op == IROp::Alloca && Ins.Imm <= 0)
          return Where + " alloca with non-positive size";
      }
    }
  }
  return "";
}
