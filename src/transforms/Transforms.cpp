//===- transforms/Transforms.cpp - Table I baseline passes ----------------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "transforms/Transforms.h"

#include "mir/MIRBuilder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace mco;

namespace {

/// Structural hash of a whole function body.
uint64_t hashFunction(const MachineFunction &MF) {
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001B3ull;
  };
  Mix(MF.Blocks.size());
  for (const MachineBasicBlock &MBB : MF.Blocks) {
    Mix(MBB.size());
    for (const MachineInstr &MI : MBB.Instrs)
      Mix(MI.hash());
  }
  return H;
}

bool sameBody(const MachineFunction &A, const MachineFunction &B) {
  if (A.Blocks.size() != B.Blocks.size())
    return false;
  for (size_t Blk = 0; Blk < A.Blocks.size(); ++Blk) {
    const auto &IA = A.Blocks[Blk].Instrs;
    const auto &IB = B.Blocks[Blk].Instrs;
    if (IA.size() != IB.size())
      return false;
    for (size_t I = 0; I < IA.size(); ++I)
      if (!(IA[I] == IB[I]))
        return false;
  }
  return true;
}

/// Rewrites every symbol reference in \p M according to \p SymMap.
void rewriteReferences(Module &M,
                       const std::unordered_map<uint32_t, uint32_t> &SymMap) {
  if (SymMap.empty())
    return;
  for (MachineFunction &MF : M.Functions)
    for (MachineBasicBlock &MBB : MF.Blocks)
      for (MachineInstr &MI : MBB.Instrs)
        for (unsigned I = 0; I < MI.numOperands(); ++I) {
          MachineOperand &O = MI.operand(I);
          if (!O.isSym())
            continue;
          auto It = SymMap.find(O.getSym());
          if (It != SymMap.end())
            O = MachineOperand::sym(It->second);
        }
}

} // namespace

TransformStats mco::mergeIdenticalFunctions(Program &Prog, Module &M) {
  (void)Prog;
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();

  // Bucket by hash, confirm exact equality, map duplicates to survivors.
  std::unordered_map<uint64_t, std::vector<uint32_t>> Buckets;
  for (uint32_t F = 0; F < M.Functions.size(); ++F)
    Buckets[hashFunction(M.Functions[F])].push_back(F);

  std::unordered_map<uint32_t, uint32_t> SymMap; // Dup name -> kept name.
  std::vector<bool> Dead(M.Functions.size(), false);
  for (auto &[H, Fns] : Buckets) {
    (void)H;
    if (Fns.size() < 2)
      continue;
    for (size_t I = 0; I < Fns.size(); ++I) {
      if (Dead[Fns[I]])
        continue;
      for (size_t J = I + 1; J < Fns.size(); ++J) {
        if (Dead[Fns[J]])
          continue;
        if (!sameBody(M.Functions[Fns[I]], M.Functions[Fns[J]]))
          continue;
        SymMap[M.Functions[Fns[J]].Name] = M.Functions[Fns[I]].Name;
        Dead[Fns[J]] = true;
        ++S.FunctionsMerged;
      }
    }
  }

  rewriteReferences(M, SymMap);
  std::vector<MachineFunction> Kept;
  Kept.reserve(M.Functions.size());
  for (uint32_t F = 0; F < M.Functions.size(); ++F)
    if (!Dead[F])
      Kept.push_back(std::move(M.Functions[F]));
  M.Functions = std::move(Kept);

  S.CodeSizeAfter = M.codeSize();
  return S;
}

TransformStats mco::idiomOutliner(Program &Prog, Module &M,
                                  unsigned MinFreq) {
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();

  // The whitelist: the runtime entry points SIL outlining understands.
  std::unordered_set<uint32_t> RuntimeSyms;
  for (const char *Name : {"swift_retain", "swift_release", "objc_retain",
                           "objc_release"}) {
    uint32_t Sym = Prog.lookupSymbol(Name);
    if (Sym != UINT32_MAX)
      RuntimeSyms.insert(Sym);
  }

  // Count (source register, callee) idiom occurrences.
  struct Site {
    uint32_t Func, Block, Instr;
  };
  std::map<std::pair<unsigned, uint32_t>, std::vector<Site>> Idioms;
  for (uint32_t F = 0; F < M.Functions.size(); ++F) {
    MachineFunction &MF = M.Functions[F];
    for (uint32_t B = 0; B < MF.Blocks.size(); ++B) {
      const auto &Instrs = MF.Blocks[B].Instrs;
      for (uint32_t I = 0; I + 1 < Instrs.size(); ++I) {
        const MachineInstr &Mov = Instrs[I];
        const MachineInstr &Call = Instrs[I + 1];
        if (Mov.opcode() != Opcode::MOVrr || Call.opcode() != Opcode::BL)
          continue;
        if (Mov.operand(0).getReg() != Reg::X0)
          continue;
        if (!RuntimeSyms.count(Call.operand(0).getSym()))
          continue;
        Idioms[{regIndex(Mov.operand(1).getReg()),
                Call.operand(0).getSym()}]
            .push_back(Site{F, B, I});
      }
    }
  }

  // Emit one helper per frequent idiom and rewrite sites (back to front
  // within each block so indices stay valid).
  std::vector<MachineFunction> Helpers;
  std::map<std::pair<uint32_t, uint32_t>, std::vector<std::pair<uint32_t,
                                                                uint32_t>>>
      Edits; // (Func, Block) -> (InstrIdx, HelperSym)
  for (auto &[Key, Sites] : Idioms) {
    if (Sites.size() < MinFreq)
      continue;
    Reg Src = regFromIndex(Key.first);
    uint32_t Callee = Key.second;
    uint32_t HelperSym = Prog.internSymbol(
        "__sil_outlined_" + std::string(regName(Src)) + "_" +
        Prog.symbolName(Callee));
    MachineFunction Helper;
    Helper.Name = HelperSym;
    Helper.IsOutlined = true;
    Helper.FrameKind = OutlinedFrameKind::Thunk;
    MIRBuilder HB(Helper.addBlock());
    HB.movrr(Reg::X0, Src);
    HB.btail(Callee);
    Helpers.push_back(std::move(Helper));

    for (const Site &Loc : Sites) {
      Edits[{Loc.Func, Loc.Block}].push_back({Loc.Instr, HelperSym});
      ++S.SequencesRewritten;
    }
  }

  for (auto &[Key, BlockEdits] : Edits) {
    auto &Instrs = M.Functions[Key.first].Blocks[Key.second].Instrs;
    std::sort(BlockEdits.begin(), BlockEdits.end(),
              [](auto &A, auto &B) { return A.first > B.first; });
    uint32_t PrevStart = UINT32_MAX;
    for (auto &[Idx, HelperSym] : BlockEdits) {
      if (Idx + 1 >= PrevStart)
        continue; // Overlapping pair (mov; bl; mov; bl chains).
      Instrs.erase(Instrs.begin() + Idx, Instrs.begin() + Idx + 2);
      Instrs.insert(Instrs.begin() + Idx,
                    MachineInstr(Opcode::BL, MachineOperand::sym(HelperSym)));
      PrevStart = Idx;
    }
  }
  for (MachineFunction &H : Helpers)
    M.Functions.push_back(std::move(H));
  S.FunctionsMerged = Helpers.size();

  S.CodeSizeAfter = M.codeSize();
  return S;
}

TransformStats mco::mergeSimilarFunctions(Program &Prog, Module &M) {
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();

  // Candidates: single-block functions not mentioning x6/x7.
  auto MentionsParamRegs = [](const MachineFunction &MF) {
    for (const MachineBasicBlock &MBB : MF.Blocks)
      for (const MachineInstr &MI : MBB.Instrs)
        for (unsigned I = 0; I < MI.numOperands(); ++I)
          if (MI.operand(I).isReg() && (MI.operand(I).getReg() == Reg::X6 ||
                                        MI.operand(I).getReg() == Reg::X7))
            return true;
    return false;
  };

  /// Hash ignoring MOVri immediates (the mergeable dimension).
  auto SkeletonHash = [](const MachineFunction &MF) {
    uint64_t H = 0xCBF29CE484222325ull;
    auto Mix = [&H](uint64_t V) {
      H ^= V;
      H *= 0x100000001B3ull;
    };
    for (const MachineBasicBlock &MBB : MF.Blocks)
      for (const MachineInstr &MI : MBB.Instrs) {
        if (MI.opcode() == Opcode::MOVri) {
          Mix(1000 + regIndex(MI.operand(0).getReg()));
          continue;
        }
        Mix(MI.hash());
      }
    return H;
  };

  std::unordered_map<uint64_t, std::vector<uint32_t>> Buckets;
  for (uint32_t F = 0; F < M.Functions.size(); ++F) {
    const MachineFunction &MF = M.Functions[F];
    if (MF.Blocks.size() != 1 || MF.Blocks[0].size() < 5 ||
        MentionsParamRegs(MF))
      continue;
    Buckets[SkeletonHash(MF)].push_back(F);
  }

  // Diff positions between two same-skeleton bodies.
  auto DiffPositions = [](const MachineFunction &A, const MachineFunction &B,
                          std::vector<uint32_t> &Out) {
    const auto &IA = A.Blocks[0].Instrs;
    const auto &IB = B.Blocks[0].Instrs;
    if (IA.size() != IB.size())
      return false;
    Out.clear();
    for (uint32_t I = 0; I < IA.size(); ++I) {
      if (IA[I] == IB[I])
        continue;
      if (IA[I].opcode() != Opcode::MOVri || IB[I].opcode() != Opcode::MOVri)
        return false;
      if (!(IA[I].operand(0) == IB[I].operand(0)))
        return false;
      Out.push_back(I);
      if (Out.size() > 2)
        return false;
    }
    return true;
  };

  unsigned MergedCounter = 0;
  for (auto &[H, Fns] : Buckets) {
    (void)H;
    if (Fns.size() < 2)
      continue;
    // Greedy grouping around the first ungrouped member.
    std::vector<bool> Grouped(Fns.size(), false);
    for (size_t Lead = 0; Lead < Fns.size(); ++Lead) {
      if (Grouped[Lead])
        continue;
      MachineFunction &Rep = M.Functions[Fns[Lead]];
      // Find the union of diff positions vs the representative.
      std::vector<size_t> Members;
      std::vector<uint32_t> UnionDiffs;
      for (size_t J = Lead + 1; J < Fns.size(); ++J) {
        if (Grouped[J])
          continue;
        std::vector<uint32_t> Diffs;
        if (!DiffPositions(Rep, M.Functions[Fns[J]], Diffs))
          continue;
        std::vector<uint32_t> NewUnion = UnionDiffs;
        for (uint32_t D : Diffs)
          if (std::find(NewUnion.begin(), NewUnion.end(), D) ==
              NewUnion.end())
            NewUnion.push_back(D);
        if (NewUnion.size() > 2)
          continue;
        UnionDiffs = std::move(NewUnion);
        Members.push_back(J);
      }
      if (Members.empty() || UnionDiffs.empty())
        continue;
      std::sort(UnionDiffs.begin(), UnionDiffs.end());

      // The diff positions must precede any call (calls clobber x6/x7).
      const auto &RepInstrs = Rep.Blocks[0].Instrs;
      uint32_t FirstCall = static_cast<uint32_t>(RepInstrs.size());
      for (uint32_t I = 0; I < RepInstrs.size(); ++I)
        if (RepInstrs[I].isCall()) {
          FirstCall = I;
          break;
        }
      if (UnionDiffs.back() >= FirstCall)
        continue;

      // Build the merged body: representative with parameterized MOVri.
      MachineFunction Merged;
      Merged.Name = Prog.internSymbol("__merged_similar_" +
                                      std::to_string(MergedCounter++));
      Merged.Blocks = Rep.Blocks;
      static const Reg ParamRegs[2] = {Reg::X6, Reg::X7};
      for (size_t D = 0; D < UnionDiffs.size(); ++D) {
        MachineInstr &MI = Merged.Blocks[0].Instrs[UnionDiffs[D]];
        assert(MI.opcode() == Opcode::MOVri && "diff must be a MOVri");
        MI = MachineInstr(Opcode::MOVrr, MI.operand(0),
                          MachineOperand::reg(ParamRegs[D]));
      }

      // Turn the representative and each member into thunks.
      auto MakeThunk = [&](MachineFunction &MF) {
        std::vector<int64_t> Imms;
        for (uint32_t D : UnionDiffs)
          Imms.push_back(MF.Blocks[0].Instrs[D].operand(1).getImm());
        MF.Blocks.clear();
        MIRBuilder TB(MF.addBlock());
        for (size_t D = 0; D < Imms.size(); ++D)
          TB.movri(ParamRegs[D], Imms[D]);
        TB.btail(Merged.Name);
        ++S.FunctionsMerged;
      };
      MakeThunk(Rep);
      for (size_t J : Members)
        MakeThunk(M.Functions[Fns[J]]);
      Grouped[Lead] = true;
      for (size_t J : Members)
        Grouped[J] = true;
      M.Functions.push_back(std::move(Merged));
    }
  }

  S.CodeSizeAfter = M.codeSize();
  return S;
}

TransformStats mco::eliminateDeadFunctions(
    Program &Prog, Module &M, const std::vector<std::string> &Roots) {
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();

  std::unordered_map<uint32_t, uint32_t> FnBySym;
  for (uint32_t F = 0; F < M.Functions.size(); ++F)
    FnBySym[M.Functions[F].Name] = F;

  std::vector<bool> Live(M.Functions.size(), false);
  std::vector<uint32_t> Work;
  for (const std::string &Root : Roots) {
    uint32_t Sym = Prog.lookupSymbol(Root);
    if (Sym == UINT32_MAX)
      continue;
    auto It = FnBySym.find(Sym);
    if (It != FnBySym.end() && !Live[It->second]) {
      Live[It->second] = true;
      Work.push_back(It->second);
    }
  }
  while (!Work.empty()) {
    uint32_t F = Work.back();
    Work.pop_back();
    for (const MachineBasicBlock &MBB : M.Functions[F].Blocks)
      for (const MachineInstr &MI : MBB.Instrs)
        for (unsigned I = 0; I < MI.numOperands(); ++I) {
          if (!MI.operand(I).isSym())
            continue;
          auto It = FnBySym.find(MI.operand(I).getSym());
          if (It != FnBySym.end() && !Live[It->second]) {
            Live[It->second] = true;
            Work.push_back(It->second);
          }
        }
  }

  std::vector<MachineFunction> Kept;
  for (uint32_t F = 0; F < M.Functions.size(); ++F) {
    if (Live[F])
      Kept.push_back(std::move(M.Functions[F]));
    else
      ++S.FunctionsMerged;
  }
  M.Functions = std::move(Kept);
  S.CodeSizeAfter = M.codeSize();
  return S;
}

TransformStats mco::layoutOutlinedByHotness(Program &Prog, Module &M) {
  (void)Prog;
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();

  std::vector<MachineFunction> Originals, Outlined;
  for (MachineFunction &MF : M.Functions) {
    if (MF.IsOutlined)
      Outlined.push_back(std::move(MF));
    else
      Originals.push_back(std::move(MF));
  }
  std::stable_sort(Outlined.begin(), Outlined.end(),
                   [](const MachineFunction &A, const MachineFunction &B) {
                     return A.OutlinedCallSites > B.OutlinedCallSites;
                   });
  S.SequencesRewritten = Outlined.size();

  M.Functions = std::move(Originals);
  for (MachineFunction &MF : Outlined)
    M.Functions.push_back(std::move(MF));

  S.CodeSizeAfter = M.codeSize();
  return S;
}

TransformStats mco::normalizeCommutativeOperands(Program &Prog, Module &M) {
  (void)Prog;
  TransformStats S;
  S.CodeSizeBefore = M.codeSize();
  for (MachineFunction &MF : M.Functions)
    for (MachineBasicBlock &MBB : MF.Blocks)
      for (MachineInstr &MI : MBB.Instrs) {
        switch (MI.opcode()) {
        case Opcode::ADDrr:
        case Opcode::MULrr:
        case Opcode::ANDrr:
        case Opcode::ORRrr:
        case Opcode::EORrr:
          break;
        default:
          continue;
        }
        Reg A = MI.operand(1).getReg();
        Reg B = MI.operand(2).getReg();
        if (regIndex(A) > regIndex(B)) {
          MI.operand(1) = MachineOperand::reg(B);
          MI.operand(2) = MachineOperand::reg(A);
          ++S.SequencesRewritten;
        }
      }
  S.CodeSizeAfter = M.codeSize();
  return S;
}
