//===- transforms/Transforms.h - Table I baseline passes --------*- C++ -*-===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The size-reduction alternatives the paper surveyed before settling on
/// repeated machine outlining (Table I):
///
///  - mergeIdenticalFunctions: LLVM MergeFunctions analogue — functions
///    with bit-identical bodies are collapsed onto one definition and all
///    references are rewritten (paper: ~0.9% saving).
///
///  - idiomOutliner: the SILOptimizer "Outlining" pass analogue — only a
///    fixed whitelist of well-known idioms (reference-counting bridges) is
///    extracted (paper: ~0.41% saving).
///
///  - mergeSimilarFunctions: FMSA/MergeSimilarFunctions analogue —
///    functions identical up to a couple of immediate operands merge into
///    one parameterized body plus per-function thunks (paper: ~2%).
///
///  - eliminateDeadFunctions: the in-house dead-code removal the app build
///    already runs (Section II-B).
///
//===----------------------------------------------------------------------===//

#ifndef MCO_TRANSFORMS_TRANSFORMS_H
#define MCO_TRANSFORMS_TRANSFORMS_H

#include "mir/Program.h"

#include <string>
#include <vector>

namespace mco {

/// Statistics common to the function-merging passes.
struct TransformStats {
  uint64_t FunctionsMerged = 0;
  uint64_t SequencesRewritten = 0;
  uint64_t CodeSizeBefore = 0;
  uint64_t CodeSizeAfter = 0;

  uint64_t bytesSaved() const { return CodeSizeBefore - CodeSizeAfter; }
  double savingPercent() const {
    return CodeSizeBefore == 0
               ? 0.0
               : 100.0 * double(bytesSaved()) / double(CodeSizeBefore);
  }
};

/// Collapses functions with identical bodies; rewrites BL/Btail/ADR
/// references to the surviving copy and deletes the duplicates.
TransformStats mergeIdenticalFunctions(Program &Prog, Module &M);

/// Outlines only whitelisted 2-instruction reference-counting idioms
/// (`mov x0, <reg>; bl swift_retain/...`) occurring at least \p MinFreq
/// times. Models SIL-level outlining's restricted pattern vocabulary.
TransformStats idiomOutliner(Program &Prog, Module &M, unsigned MinFreq = 3);

/// Merges single-block functions that are identical except for at most two
/// MOVri immediates (all preceding any call): the shared body becomes one
/// function taking the immediates in x6/x7; every original becomes a
/// 3-instruction thunk. Skips functions that mention x6/x7.
TransformStats mergeSimilarFunctions(Program &Prog, Module &M);

/// Deletes functions not reachable from \p Roots via BL/Btail/ADR.
TransformStats eliminateDeadFunctions(Program &Prog, Module &M,
                                      const std::vector<std::string> &Roots);

/// The paper's future-work item (3): layout optimization on the outlined
/// code. Reorders the module's outlined functions by descending call-site
/// count so the hot outlined bodies pack into the fewest cache lines and
/// pages; original functions keep their relative order. Size-neutral.
/// Returns stats with SequencesRewritten = outlined functions moved.
TransformStats layoutOutlinedByHotness(Program &Prog, Module &M);

/// A first step toward the paper's future-work item (1), "semantic
/// equivalence of machine-code sequences": canonicalizes the operand
/// order of commutative ALU instructions (ADD/AND/ORR/EOR/MUL with two
/// register sources) so that sequences differing only in commuted
/// operands become textually identical and therefore outlinable.
/// Size-neutral by itself; run before the outliner.
/// Returns stats with SequencesRewritten = instructions canonicalized.
TransformStats normalizeCommutativeOperands(Program &Prog, Module &M);

} // namespace mco

#endif // MCO_TRANSFORMS_TRANSFORMS_H
