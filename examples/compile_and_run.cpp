//===- examples/compile_and_run.cpp - The compiler substrate end to end ---===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Shows the full compiler path the Table IV benchmarks use: author a
/// program in the mid-level IR (here: iterative Fibonacci plus a helper),
/// lower it to machine code, outline it, and execute both versions in the
/// simulator.
///
/// Usage: compile_and_run [n]
///
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "ir/IRBuilder.h"
#include "linker/Linker.h"
#include "mir/MIRPrinter.h"
#include "outliner/MachineOutliner.h"
#include "sim/Interpreter.h"

#include <cstdio>
#include <cstdlib>

using namespace mco;
using namespace mco::ir;

namespace {

IRModule buildFibModule() {
  IRModule M;
  M.Name = "fib";
  // add3(a, b, c) = a + b + c — a helper so the module has calls.
  {
    IRBuilder B(M, "add3", 3);
    B.ret(B.add(B.add(B.param(0), B.param(1)), B.param(2)));
    B.finish();
  }
  // fib(n): iterative.
  {
    IRBuilder B(M, "fib", 1);
    Value A = B.alloca_(8), Bv = B.alloca_(8), I = B.alloca_(8);
    B.store(B.constInt(0), A);
    B.store(B.constInt(1), Bv);
    B.store(B.constInt(0), I);
    uint32_t Header = B.newBlock();
    uint32_t Body = B.newBlock();
    uint32_t Exit = B.newBlock();
    B.setBlock(0);
    B.br(Header);
    B.setBlock(Header);
    B.condBr(B.icmp(Pred::LT, B.load(I), B.param(0)), Body, Exit);
    B.setBlock(Body);
    Value Next = B.call("add3", {B.load(A), B.load(Bv), B.constInt(0)});
    B.store(B.load(Bv), A);
    B.store(Next, Bv);
    B.store(B.add(B.load(I), B.constInt(1)), I);
    B.br(Header);
    B.setBlock(Exit);
    B.ret(B.load(A));
    B.finish();
  }
  return M;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = argc > 1 ? std::atoll(argv[1]) : 30;

  IRModule IRM = buildFibModule();
  std::string Err = verify(IRM);
  if (!Err.empty()) {
    std::fprintf(stderr, "IR verification failed: %s\n", Err.c_str());
    return 1;
  }

  Program Prog;
  Module &M = Prog.addModule("fib");
  lowerModule(Prog, M, IRM);

  std::printf("== generated machine code (%llu bytes) ==\n",
              static_cast<unsigned long long>(M.codeSize()));
  std::printf("%s\n", printModule(M, Prog).c_str());

  // Execute, outline, execute again.
  int64_t Before, After;
  {
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    Before = I.call("fib", {N});
  }
  RepeatedOutlineStats S = runRepeatedOutliner(Prog, M, 5);
  {
    BinaryImage Image(Prog);
    Interpreter I(Image, Prog);
    After = I.call("fib", {N});
  }

  std::printf("fib(%lld) = %lld before outlining, %lld after "
              "(%llu bytes saved, %llu outlined functions)\n",
              static_cast<long long>(N), static_cast<long long>(Before),
              static_cast<long long>(After),
              static_cast<unsigned long long>(
                  S.Rounds.empty() ? 0
                                   : S.Rounds.front().CodeSizeBefore -
                                         S.Rounds.back().CodeSizeAfter),
              static_cast<unsigned long long>(S.totalFunctionsCreated()));
  return Before == After ? 0 : 1;
}
