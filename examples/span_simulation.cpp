//===- examples/span_simulation.cpp - Run a user journey in the simulator -===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Builds the synthetic app twice (default pipeline vs whole-program
/// five-round outlining), executes the same user-journey span on both
/// under the microarchitectural model, and prints the performance
/// counters side by side — the single-cell version of the paper's Fig. 13
/// production comparison. Also demonstrates that the optimized binary is
/// observationally equivalent (identical global side effects).
///
/// Usage: span_simulation [span_index]
///
//===----------------------------------------------------------------------===//

#include "pipeline/BuildPipeline.h"
#include "sim/Interpreter.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <cstdlib>

using namespace mco;

int main(int argc, char **argv) {
  unsigned Span = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 0;
  AppProfile Profile = AppProfile::uberRider();
  Profile.NumModules = 60; // Keep the example snappy.
  if (Span >= Profile.NumSpans) {
    std::fprintf(stderr, "span index must be < %u\n", Profile.NumSpans);
    return 1;
  }

  PerfConfig Device; // A mid-range phone.
  Device.ICacheBytes = 64 << 10;

  struct Run {
    const char *Name;
    PerfCounters Counters;
    uint64_t CodeSize;
    uint64_t GlobalChecksum;
  } Runs[2];

  for (int Optimized = 0; Optimized <= 1; ++Optimized) {
    auto Prog = CorpusSynthesizer(Profile).generate();
    PipelineOptions Opts;
    Opts.WholeProgram = Optimized == 1;
    Opts.OutlineRounds = Optimized ? 5 : 0;
    BuildResult BR = buildProgram(*Prog, Opts);
    BinaryImage Image(*Prog);
    Interpreter I(Image, *Prog, &Device);
    I.call(CorpusSynthesizer::spanFunctionName(Span));

    // Observable behaviour: checksum every module global after the run.
    uint64_t Sum = 0;
    for (unsigned M = 0; M < Profile.NumModules; ++M)
      for (unsigned G = 0; G < Profile.GlobalsPerModule; ++G) {
        uint32_t Sym = Prog->lookupSymbol(
            "g_" + std::to_string(M) + "_" + std::to_string(G));
        uint64_t Addr = Image.globalAddr(Sym);
        for (unsigned W = 0; W < Profile.GlobalWords; ++W)
          Sum = Sum * 1099511628211ull + I.memory().read64(Addr + 8 * W);
      }

    Runs[Optimized] = Run{Optimized ? "whole-program, 5 rounds"
                                    : "default (no outlining)",
                          I.counters(), BR.CodeSize, Sum};
  }

  std::printf("span %u on a 64KB-I$ device:\n\n", Span);
  std::printf("%-28s %16s %16s\n", "", Runs[0].Name, Runs[1].Name);
  auto Row = [&](const char *Name, double A, double B) {
    std::printf("%-28s %16.0f %16.0f\n", Name, A, B);
  };
  Row("code size (bytes)", double(Runs[0].CodeSize),
      double(Runs[1].CodeSize));
  Row("instructions", double(Runs[0].Counters.Instrs),
      double(Runs[1].Counters.Instrs));
  Row("  of which outlined", double(Runs[0].Counters.OutlinedInstrs),
      double(Runs[1].Counters.OutlinedInstrs));
  Row("i-cache misses", double(Runs[0].Counters.ICacheMisses),
      double(Runs[1].Counters.ICacheMisses));
  Row("i-TLB misses", double(Runs[0].Counters.ITlbMisses),
      double(Runs[1].Counters.ITlbMisses));
  Row("branch mispredicts", double(Runs[0].Counters.BranchMispredicts),
      double(Runs[1].Counters.BranchMispredicts));
  Row("cycles", Runs[0].Counters.Cycles, Runs[1].Counters.Cycles);
  std::printf("%-28s %16.3f %16.3f\n", "IPC", Runs[0].Counters.ipc(),
              Runs[1].Counters.ipc());

  std::printf("\nobservable global state %s\n",
              Runs[0].GlobalChecksum == Runs[1].GlobalChecksum
                  ? "IDENTICAL across builds (outlining preserved "
                    "semantics)"
                  : "DIFFERS (bug!)");
  return Runs[0].GlobalChecksum == Runs[1].GlobalChecksum ? 0 : 1;
}
