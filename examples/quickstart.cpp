//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: build a tiny machine-code module containing the paper's
/// Listing 1/2 retain idiom, run one round of the machine outliner, and
/// print the before/after assembly. See README.md for the full tour.
///
//===----------------------------------------------------------------------===//

#include "mir/MIRBuilder.h"
#include "mir/MIRPrinter.h"
#include "mir/Program.h"
#include "outliner/MachineOutliner.h"

#include <cstdio>

using namespace mco;

int main() {
  // A Program owns the symbol pool and the modules.
  Program Prog;
  Module &M = Prog.addModule("demo");
  uint32_t Release = Prog.internSymbol("swift_release");

  // Three functions that all end their hot path with the same
  // "mov x0, x20; bl swift_release" sequence (the paper's most common
  // repeated pattern) plus a distinct prefix.
  for (int I = 0; I < 3; ++I) {
    MachineFunction MF;
    MF.Name = Prog.internSymbol("feature_" + std::to_string(I));
    MIRBuilder B(MF.addBlock());
    B.movri(Reg::X9, 100 + I); // Unique per function.
    B.movrr(Reg::X0, Reg::X20);
    B.bl(Release);
    B.movri(Reg::X0, 0);
    B.ret();
    M.Functions.push_back(MF);
  }

  std::printf("== before outlining (%llu bytes of code) ==\n",
              static_cast<unsigned long long>(M.codeSize()));
  std::printf("%s\n", printModule(M, Prog).c_str());

  OutlineRoundStats Stats = runOutlinerRound(Prog, M, /*Round=*/1);

  std::printf("== after one outlining round (%llu bytes) ==\n",
              static_cast<unsigned long long>(M.codeSize()));
  std::printf("%s\n", printModule(M, Prog).c_str());
  std::printf("outlined %llu occurrences into %llu new function(s), "
              "saving %llu bytes\n",
              static_cast<unsigned long long>(Stats.SequencesOutlined),
              static_cast<unsigned long long>(Stats.FunctionsCreated),
              static_cast<unsigned long long>(Stats.bytesSaved()));
  return 0;
}
