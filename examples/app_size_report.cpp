//===- examples/app_size_report.cpp - Size report for a synthetic app -----===//
//
// Part of the mco project (CGO 2021 code-size outlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Generates a (small) UberRider-like corpus and reports what the build
/// pipelines do to its size: default per-module pipeline versus the
/// paper's whole-program pipeline at increasing repeat counts, plus the
/// top repeated machine-code patterns driving the savings.
///
/// Usage: app_size_report [num_modules]
///
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"
#include "outliner/PatternStats.h"
#include "pipeline/BuildPipeline.h"
#include "synth/CorpusSynthesizer.h"

#include <cstdio>
#include <cstdlib>

using namespace mco;

int main(int argc, char **argv) {
  AppProfile Profile = AppProfile::uberRider();
  if (argc > 1)
    Profile.NumModules = static_cast<unsigned>(std::atoi(argv[1]));
  else
    Profile.NumModules = 40; // Keep the example snappy.

  std::printf("synthesizing '%s' with %u feature modules...\n",
              Profile.Name.c_str(), Profile.NumModules);
  {
    auto Prog = CorpusSynthesizer(Profile).generate();
    std::printf("  %llu instructions, %.1f KB code, %.1f KB data\n\n",
                static_cast<unsigned long long>(Prog->numInstrs()),
                Prog->codeSize() / 1024.0, Prog->dataSize() / 1024.0);
  }

  std::printf("%-34s %12s %10s\n", "build configuration", "code KB",
              "saving");
  uint64_t Baseline = 0;
  for (bool WholeProgram : {false, true}) {
    for (unsigned Rounds : {0u, 1u, 3u, 5u}) {
      auto Prog = CorpusSynthesizer(Profile).generate();
      PipelineOptions Opts;
      Opts.WholeProgram = WholeProgram;
      Opts.OutlineRounds = Rounds;
      BuildResult R = buildProgram(*Prog, Opts);
      if (Baseline == 0)
        Baseline = R.CodeSize;
      char Name[64];
      std::snprintf(Name, sizeof(Name), "%s, %u round%s",
                    WholeProgram ? "whole-program" : "per-module", Rounds,
                    Rounds == 1 ? "" : "s");
      std::printf("%-34s %12.1f %9.1f%%\n", Name, R.CodeSize / 1024.0,
                  100.0 * (double(Baseline) - double(R.CodeSize)) /
                      double(Baseline));
    }
  }

  std::printf("\ntop repeated machine-code patterns (cf. paper "
              "Listings 1-8):\n");
  auto Prog = CorpusSynthesizer(Profile).generate();
  Module &Linked = linkProgram(*Prog);
  PatternAnalysis A = analyzePatterns(*Prog, Linked);
  for (unsigned I = 0; I < 4 && I < A.Patterns.size(); ++I) {
    const PatternRecord &P = A.Patterns[I];
    std::printf("-- rank %u: repeats %llu times, %u instructions\n%s\n",
                P.Rank, static_cast<unsigned long long>(P.Frequency),
                P.Length, P.Text.c_str());
  }
  return 0;
}
